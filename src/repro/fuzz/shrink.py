"""Delta-debugging minimizer: shrink a failing scenario to a reproducer.

Given a scenario and a predicate (usually "some oracle that failed on the
original still fails"), the minimizer greedily applies structural reductions
and keeps any variant on which the predicate still holds:

* **schemes** -- drop roster entries (a one-scheme reproducer beats four);
* **destinations** -- ddmin-style: try removing halves, then singles;
* **message length** -- ``message_packets`` to 1, ``packet_flits`` downward;
* **hosts** -- delete nodes that are neither source nor destination
  (renumbering the survivors densely);
* **links** -- fail individual extra links, as long as the switch graph
  stays connected (:func:`repro.topology.faults.remove_link` semantics);
  links referenced by the runtime fault schedule are spared, so the
  schedule keeps aiming at links that exist;
* **switches** -- delete host-free switches whose removal keeps the switch
  graph connected, renumbering the survivors (and the fault schedule's
  link ids, since :func:`drop_switch` renumbers links densely);
* **faults** -- drop runtime fault events (a zero- or one-fault chaos
  reproducer beats two);
* **churn** -- drop membership churn ops (prefix halves, then singles),
  re-filtered so the surviving stream stays valid against the (possibly
  shrunken) destination set;
* **collectives** -- drop open-loop collective admissions (halves, then
  singles; a one-op workload reproducer beats five); surviving roots are
  kept alive by the host pass, which renumbers them with everything else;
* **virtual channels** -- reduce ``vc_count`` toward the single-lane
  fabric (1 first, then 2), resetting escape routing to plain up*/down*
  when the escape lane requirement (>= 2 VCs) would be violated.

Passes repeat until a full sweep makes no progress, so the result is
1-minimal with respect to these moves.  Everything is deterministic: moves
are tried in a fixed order and the first improvement wins.
"""

from __future__ import annotations

from typing import Callable

from repro.topology import faults
from repro.topology.graph import NetworkTopology, PortRef, SwitchLink
from repro.fuzz.oracles import run_oracles
from repro.fuzz.scenario import FuzzScenario

Predicate = Callable[[FuzzScenario], bool]
"""True when the (shrunken) scenario still reproduces the failure."""


def oracle_predicate(oracle_names: frozenset[str] | set[str]) -> Predicate:
    """Predicate: some oracle from ``oracle_names`` still reports a violation.

    Pinning the oracle set prevents the minimizer from drifting onto an
    unrelated failure (e.g. shrinking the packet below the tree scheme's
    header capacity while hunting a delivery bug).
    """
    names = frozenset(oracle_names)

    def failing(sc: FuzzScenario) -> bool:
        return any(v.oracle in names for v in run_oracles(sc).violations)

    return failing


# ----------------------------------------------------------------------
# Topology surgery
# ----------------------------------------------------------------------
def drop_nodes(
    topo: NetworkTopology, victims: set[int]
) -> tuple[NetworkTopology, dict[int, int]]:
    """Remove host nodes, renumbering survivors densely.

    Returns the new topology and the old-id -> new-id map for survivors.
    """
    keep = [n for n in range(topo.num_nodes) if n not in victims]
    remap = {old: new for new, old in enumerate(keep)}
    return (
        NetworkTopology(
            num_switches=topo.num_switches,
            ports_per_switch=topo.ports_per_switch,
            node_attachment=[topo.node_attachment[n] for n in keep],
            links=list(topo.links),
        ),
        remap,
    )


def drop_switch(topo: NetworkTopology, switch: int) -> NetworkTopology | None:
    """Remove one host-free switch (and its links) if connectivity survives.

    Returns ``None`` when the switch hosts nodes or its removal would
    disconnect the remaining switch graph.
    """
    if any(p.switch == switch for p in topo.node_attachment):
        return None
    keep_links = [
        lk for lk in topo.links
        if lk.a.switch != switch and lk.b.switch != switch
    ]
    sw_map = {
        old: new
        for new, old in enumerate(
            s for s in range(topo.num_switches) if s != switch
        )
    }

    def remap_port(p: PortRef) -> PortRef:
        return PortRef(sw_map[p.switch], p.port)

    candidate = NetworkTopology(
        num_switches=topo.num_switches - 1,
        ports_per_switch=topo.ports_per_switch,
        node_attachment=[remap_port(p) for p in topo.node_attachment],
        links=[
            SwitchLink(i, remap_port(lk.a), remap_port(lk.b))
            for i, lk in enumerate(keep_links)
        ],
    )
    return candidate if candidate.is_connected() else None


def _filter_churn(
    ops: tuple[tuple[str, int], ...],
    source: int,
    dests: tuple[int, ...],
    num_nodes: int,
) -> tuple[tuple[str, int], ...]:
    """The longest subsequence of ``ops`` valid for this group shape.

    Replays the scenario validator's membership simulation, dropping any
    op the shrunken scenario would reject (leave of a non-member after its
    drop was removed, join of a node that no longer exists, ...).
    """
    members = set(dests)
    kept: list[tuple[str, int]] = []
    for op, node in ops:
        if not 0 <= node < num_nodes or node == source:
            continue
        if op == "join" and node not in members:
            members.add(node)
            kept.append((op, node))
        elif op == "leave" and node in members and len(members) > 1:
            members.remove(node)
            kept.append((op, node))
    return tuple(kept)


# ----------------------------------------------------------------------
# Shrink passes (each returns an improved scenario or None)
# ----------------------------------------------------------------------
def _shrink_schemes(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    if len(sc.schemes) <= 1:
        return None
    for i in range(len(sc.schemes)):
        candidate = sc.with_changes(
            schemes=sc.schemes[:i] + sc.schemes[i + 1:]
        )
        if failing(candidate):
            return candidate
    return None


def _shrink_dests(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    if len(sc.dests) <= 1:
        return None
    half = len(sc.dests) // 2
    chunks = [sc.dests[:half], sc.dests[half:]] if half else []
    singles = [
        sc.dests[:i] + sc.dests[i + 1:] for i in range(len(sc.dests))
    ]
    for kept in chunks + singles:
        if not kept:
            continue
        candidate = sc.with_changes(
            dests=tuple(kept),
            churn_ops=_filter_churn(
                sc.churn_ops, sc.source, tuple(kept), sc.topo.num_nodes
            ),
        )
        if failing(candidate):
            return candidate
    return None


def _shrink_message(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    p = sc.params
    trials = []
    if p.message_packets > 1:
        trials.append(p.replace(message_packets=1))
    for flits in (2, 4, 8):
        if flits < p.packet_flits:
            trials.append(p.replace(packet_flits=flits))
    for params in trials:
        candidate = sc.with_changes(params=params)
        if failing(candidate):
            return candidate
    return None


def _shrink_hosts(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    used = {
        sc.source,
        *sc.dests,
        *(n for _op, n in sc.churn_ops),
        *(root for _t, _kind, root in sc.collective_ops),
    }
    spare = [n for n in range(sc.topo.num_nodes) if n not in used]
    if not spare:
        return None
    # All at once first (usually succeeds), then one at a time.
    for victims in [set(spare)] + [{n} for n in spare]:
        topo, remap = drop_nodes(sc.topo, victims)
        candidate = sc.with_changes(
            topo=topo,
            source=remap[sc.source],
            dests=tuple(remap[d] for d in sc.dests),
            churn_ops=tuple(
                (op, remap[n]) for op, n in sc.churn_ops
            ),
            collective_ops=tuple(
                (t, kind, remap[root])
                for t, kind, root in sc.collective_ops
            ),
        )
        if failing(candidate):
            return candidate
    return None


def _shrink_links(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    scheduled = {lk for _t, lk in sc.fault_schedule}
    for link_id in faults.removable_links(sc.topo):
        if link_id in scheduled:
            continue  # keep the fault schedule's targets alive
        candidate = sc.with_changes(
            topo=faults.remove_link(sc.topo, link_id)
        )
        if failing(candidate):
            return candidate
    return None


def _shrink_switches(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    if sc.topo.num_switches <= 1:
        return None
    for switch in range(sc.topo.num_switches):
        topo = drop_switch(sc.topo, switch)
        if topo is None:
            continue
        schedule = sc.fault_schedule
        if schedule:
            # drop_switch renumbers the surviving links densely in their
            # old order; remap the schedule's ids (events whose link died
            # with the switch are dropped).
            survivors = [
                lk.link_id for lk in sc.topo.links
                if lk.a.switch != switch and lk.b.switch != switch
            ]
            id_map = {old: new for new, old in enumerate(survivors)}
            schedule = tuple(
                (t, id_map[lk])
                for t, lk in schedule
                if lk in id_map
            )
        candidate = sc.with_changes(topo=topo, fault_schedule=schedule)
        if failing(candidate):
            return candidate
    return None


def _shrink_faults(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    if not sc.fault_schedule:
        return None
    for i in range(len(sc.fault_schedule)):
        candidate = sc.with_changes(
            fault_schedule=sc.fault_schedule[:i] + sc.fault_schedule[i + 1:]
        )
        if failing(candidate):
            return candidate
    return None


def _shrink_churn(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    if not sc.churn_ops:
        return None
    half = len(sc.churn_ops) // 2
    trials = []
    if half:
        trials.extend([sc.churn_ops[:half], sc.churn_ops[half:]])
    trials.extend(
        sc.churn_ops[:i] + sc.churn_ops[i + 1:]
        for i in range(len(sc.churn_ops))
    )
    for kept in trials:
        ops = _filter_churn(kept, sc.source, sc.dests, sc.topo.num_nodes)
        if len(ops) >= len(sc.churn_ops):
            continue
        candidate = sc.with_changes(churn_ops=ops)
        if failing(candidate):
            return candidate
    return None


def _shrink_collectives(
    sc: FuzzScenario, failing: Predicate
) -> FuzzScenario | None:
    if not sc.collective_ops:
        return None
    half = len(sc.collective_ops) // 2
    trials = []
    if half:
        trials.extend([sc.collective_ops[:half], sc.collective_ops[half:]])
    trials.extend(
        sc.collective_ops[:i] + sc.collective_ops[i + 1:]
        for i in range(len(sc.collective_ops))
    )
    for kept in trials:
        candidate = sc.with_changes(collective_ops=kept)
        if failing(candidate):
            return candidate
    return None


def _shrink_vcs(sc: FuzzScenario, failing: Predicate) -> FuzzScenario | None:
    p = sc.params
    if p.vc_count <= 1:
        return None
    trials = [1]
    if p.vc_count > 2:
        trials.append(2)
    for lanes in trials:
        params = p.replace(vc_count=lanes)
        if lanes < 2 and params.vc_routing == "escape":
            params = params.replace(vc_routing="updown")
        candidate = sc.with_changes(params=params)
        if failing(candidate):
            return candidate
    return None


_PASSES = (
    _shrink_schemes,
    _shrink_faults,
    _shrink_churn,
    _shrink_collectives,
    _shrink_dests,
    _shrink_hosts,
    _shrink_links,
    _shrink_switches,
    _shrink_message,
    _shrink_vcs,
)


def minimize(
    scenario: FuzzScenario,
    failing: Predicate,
    max_rounds: int = 50,
) -> FuzzScenario:
    """Greedy fixpoint over all shrink passes.

    ``failing`` must hold on ``scenario`` itself (raises ``ValueError``
    otherwise -- minimizing a passing scenario is a caller bug).
    """
    if not failing(scenario):
        raise ValueError("scenario does not fail; nothing to minimize")
    current = scenario
    for _ in range(max_rounds):
        improved = False
        for shrink_pass in _PASSES:
            while True:
                candidate = shrink_pass(current, failing)
                if candidate is None:
                    break
                assert candidate.size_key() <= current.size_key()
                current = candidate
                improved = True
        if not improved:
            break
    return current.with_changes(label=(scenario.label + "/minimized").lstrip("/"))
