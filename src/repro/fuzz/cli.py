"""``python -m repro.fuzz`` -- the differential fuzzing front door.

Verbs:

* ``run`` -- generate and check seeded random scenarios until the iteration
  count or wall-clock budget is exhausted; failures are minimized and saved
  as corpus entries.
* ``replay`` -- run the full oracle suite over explicit scenario files or a
  corpus directory.  Output is byte-deterministic for the same inputs.
* ``minimize`` -- shrink a failing scenario file to a minimal reproducer.
* ``corpus`` -- list a corpus directory with per-entry size metadata.

Exit code 0 means every check passed; 1 means violations (or, for
``minimize``, that the input did not fail and there was nothing to shrink);
2 means usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.fuzz import corpus as corpus_store
from repro.fuzz.generator import generate_scenario
from repro.fuzz.oracles import run_oracles
from repro.fuzz.scenario import spec_label
from repro.fuzz.shrink import minimize, oracle_predicate


def _out(line: str = "") -> None:
    print(line)


def _load(path: pathlib.Path | str):
    """Load a scenario file, or None (with a stderr message) on bad input."""
    try:
        return corpus_store.load_entry(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"not a valid scenario file {path}: {exc}", file=sys.stderr)
    return None


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    deadline = None
    if args.budget_seconds is not None:
        deadline = time.perf_counter() + args.budget_seconds
    failures = 0
    skipped = 0
    executed = 0
    for index in range(args.iterations):
        if deadline is not None and time.perf_counter() >= deadline:
            _out(f"budget exhausted after {executed} iteration(s)")
            break
        scenario = generate_scenario(args.seed, index,
                                     fault_rate=args.fault_rate,
                                     churn_rate=args.churn_rate,
                                     vc_rate=args.vc_rate,
                                     vc_count=args.vc_count,
                                     collective_rate=args.collective_rate)
        report = run_oracles(scenario)
        executed += 1
        skipped += len(report.skipped)
        if report.ok:
            if args.verbose:
                _out(report.render())
            continue
        failures += 1
        _out(report.render())
        if args.save_failures is not None:
            reproducer = scenario
            if not args.no_minimize:
                bad = frozenset(v.oracle for v in report.violations)
                reproducer = minimize(scenario, oracle_predicate(bad))
            path = corpus_store.save_entry(
                reproducer,
                args.save_failures,
                slug="-".join(
                    sorted({v.oracle for v in report.violations})
                ),
                notes="; ".join(v.render() for v in report.violations),
            )
            _out(f"  reproducer saved to {path}")
    _out(
        f"fuzz run: {executed} scenario(s), {failures} failing, "
        f"{skipped} check(s) skipped"
    )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def _replay_paths(args: argparse.Namespace) -> list[pathlib.Path]:
    paths = [pathlib.Path(p) for p in args.files]
    if args.dir is not None:
        paths.extend(corpus_store.corpus_files(args.dir))
    return paths


def cmd_replay(args: argparse.Namespace) -> int:
    paths = _replay_paths(args)
    if not paths:
        _out("no scenario files to replay")
        return 2
    failures = 0
    for path in paths:
        scenario = _load(path)
        if scenario is None:
            return 2
        report = run_oracles(scenario)
        _out(f"{path.name}:")
        _out(report.render())
        if not report.ok:
            failures += 1
    _out(f"replayed {len(paths)} scenario(s), {failures} failing")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# minimize
# ----------------------------------------------------------------------
def cmd_minimize(args: argparse.Namespace) -> int:
    scenario = _load(args.file)
    if scenario is None:
        return 2
    report = run_oracles(scenario)
    if report.ok:
        _out("scenario passes every oracle; nothing to minimize")
        return 1
    bad = frozenset(v.oracle for v in report.violations)
    _out(f"shrinking against oracle(s): {', '.join(sorted(bad))}")
    small = minimize(scenario, oracle_predicate(bad))
    out_dir = pathlib.Path(args.output).parent if args.output else \
        pathlib.Path(args.file).parent
    if args.output:
        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(small.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    else:
        path = corpus_store.save_entry(
            small, out_dir, slug="-".join(sorted(bad)) + "-min"
        )
    _out(
        f"minimized to switches={small.topo.num_switches} "
        f"nodes={small.topo.num_nodes} links={len(small.topo.links)} "
        f"dests={len(small.dests)} "
        f"schemes=[{', '.join(spec_label(s) for s in small.schemes)}]"
    )
    _out(f"written to {path}")
    return 0


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------
def cmd_corpus(args: argparse.Namespace) -> int:
    entries = corpus_store.load_corpus(args.dir)
    if not entries:
        _out(f"no corpus entries under {args.dir}")
        return 2
    for path, sc in entries:
        degraded = f" degraded={list(sc.degraded_links)}" if \
            sc.degraded_links else ""
        chaos = f" faults={[lk for _t, lk in sc.fault_schedule]}" if \
            sc.fault_schedule else ""
        churn = f" churn={len(sc.churn_ops)}" if sc.churn_ops else ""
        vcs = f" vcs={sc.params.vc_count}" if sc.params.vc_count > 1 else ""
        collectives = f" collectives={len(sc.collective_ops)}" if \
            sc.collective_ops else ""
        _out(
            f"{path.name}: switches={sc.topo.num_switches} "
            f"nodes={sc.topo.num_nodes} links={len(sc.topo.links)} "
            f"dests={len(sc.dests)} "
            f"schemes=[{', '.join(spec_label(s) for s in sc.schemes)}]"
            f"{degraded}{chaos}{churn}{vcs}{collectives}"
        )
    _out(f"{len(entries)} corpus entr{'y' if len(entries) == 1 else 'ies'}")
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing harness with invariant oracles",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="generate and check random scenarios")
    p_run.add_argument("--seed", type=int, default=0,
                       help="base seed of the scenario stream")
    p_run.add_argument("--iterations", type=int, default=100,
                       help="maximum scenarios to draw")
    p_run.add_argument("--budget-seconds", type=float, default=None,
                       help="wall-clock budget; stops drawing when exceeded")
    p_run.add_argument("--save-failures", type=pathlib.Path, default=None,
                       metavar="DIR",
                       help="minimize failures and save reproducers here")
    p_run.add_argument("--fault-rate", type=float, default=0.3,
                       help="probability a scenario carries a mid-run "
                            "fault schedule (0 disables chaos mode)")
    p_run.add_argument("--churn-rate", type=float, default=0.25,
                       help="probability a scenario carries a membership "
                            "churn stream (0 disables churn mode)")
    p_run.add_argument("--vc-rate", type=float, default=0.25,
                       help="probability a scenario runs with multiple "
                            "virtual channels (0 keeps every draw "
                            "single-lane)")
    p_run.add_argument("--collective-rate", type=float, default=0.2,
                       help="probability a scenario carries an open-loop "
                            "collective admission schedule (0 disables "
                            "collectives mode)")
    p_run.add_argument("--vc-count", type=int, default=None,
                       help="force this many virtual channels on every "
                            "scenario (overrides --vc-rate's draw)")
    p_run.add_argument("--no-minimize", action="store_true",
                       help="save raw failures without shrinking")
    p_run.add_argument("--verbose", action="store_true",
                       help="also print passing scenarios")
    p_run.set_defaults(fn=cmd_run)

    p_replay = sub.add_parser(
        "replay", help="replay scenario files through every oracle")
    p_replay.add_argument("files", nargs="*", help="scenario JSON files")
    p_replay.add_argument("--dir", type=pathlib.Path, default=None,
                          help="replay every entry of a corpus directory")
    p_replay.set_defaults(fn=cmd_replay)

    p_min = sub.add_parser(
        "minimize", help="shrink a failing scenario to a minimal reproducer")
    p_min.add_argument("file", help="scenario JSON file (must fail)")
    p_min.add_argument("-o", "--output", default=None,
                       help="write the minimized scenario here")
    p_min.set_defaults(fn=cmd_minimize)

    p_corpus = sub.add_parser("corpus", help="list a corpus directory")
    p_corpus.add_argument("--dir", type=pathlib.Path,
                          default=pathlib.Path("tests/fuzz_corpus"))
    p_corpus.set_defaults(fn=cmd_corpus)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
