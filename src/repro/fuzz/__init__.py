"""Differential fuzzing harness with invariant oracles.

The dynamic counterpart to :mod:`repro.lint`: where the linter proves
structural invariants statically on pinned configurations, the fuzzer hunts
for divergence continuously -- seeded random irregular systems (optionally
link-degraded), every multicast scheme and both simulator backends, a suite
of semantic oracles, automatic delta-debugging of failures, and a committed
corpus that replays every past reproducer as part of tier-1.

Entry points::

    python -m repro.fuzz run --seed 0 --iterations 100
    python -m repro.fuzz replay --dir tests/fuzz_corpus
    python -m repro.fuzz minimize failing.json -o minimal.json
    python -m repro.fuzz corpus --dir tests/fuzz_corpus

See ``docs/fuzzing.md`` for the generator/oracle/shrinker/corpus workflow.
"""

from repro.fuzz.corpus import (
    corpus_files,
    load_corpus,
    load_entry,
    save_entry,
)
from repro.fuzz.generator import generate_scenario
from repro.fuzz.oracles import (
    ORACLES,
    ScenarioReport,
    Violation,
    run_oracles,
    run_scheme,
)
from repro.fuzz.scenario import (
    FuzzScenario,
    derive_seed,
    scheme_spec,
    spec_label,
)
from repro.fuzz.shrink import minimize, oracle_predicate

__all__ = [
    "FuzzScenario",
    "ORACLES",
    "ScenarioReport",
    "Violation",
    "corpus_files",
    "derive_seed",
    "generate_scenario",
    "load_corpus",
    "load_entry",
    "minimize",
    "oracle_predicate",
    "run_oracles",
    "run_scheme",
    "save_entry",
    "scheme_spec",
    "spec_label",
]
