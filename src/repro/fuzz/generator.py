"""Seeded random scenario generation.

Each scenario is a fresh draw of (topology, parameters, operation, scheme
roster): random irregular topologies in the paper's size range and below,
optionally pre-degraded through :func:`repro.topology.faults.degrade`,
short packets and small software overheads so a single case simulates in
milliseconds, and every combination of buffer depth / routing-tree
orientation / adaptivity the simulator supports.

Determinism contract: scenario ``i`` of base seed ``s`` is a pure function
of ``(s, i)`` -- sub-seeds are derived with the same sha256 construction the
experiment runner uses for cell seeds, never Python's salted :func:`hash`.
"""

from __future__ import annotations

import math
import random

from repro.params import SimParams
from repro.topology import faults
from repro.topology.graph import NetworkTopology
from repro.topology.irregular import generate_irregular_topology
from repro.fuzz.scenario import FuzzScenario, derive_seed, scheme_spec

MAX_NODES = 20
"""Upper bound on hosts per scenario (keeps single-case sim time tiny)."""

_SCHEME_POOL = (
    ("binomial", {}),
    ("ni", {}),
    ("tree", {}),
    ("tree", {"max_header_dests": 2}),
    ("path", {}),
    ("path", {"strategy": "greedy"}),
)


def _draw_params(rng: random.Random) -> SimParams:
    """One random, always-valid parameter set (small and fast to simulate)."""
    num_switches = rng.randint(2, 10)
    ports = rng.randint(5, 9)
    # Leave room for hosts after the spanning tree's 2*(S-1) port ends; the
    # per-switch budget is rechecked by the topology generator itself.
    max_nodes = min(
        MAX_NODES,
        num_switches * ports - 2 * (num_switches - 1),
        num_switches * (ports - 1),
    )
    num_nodes = rng.randint(2, max(2, max_nodes))
    return SimParams(
        num_switches=num_switches,
        ports_per_switch=ports,
        num_nodes=num_nodes,
        topology_seed=rng.randrange(1 << 30),
        packet_flits=rng.choice([2, 4, 8, 16]),
        message_packets=rng.choice([1, 1, 1, 2]),
        input_buffer_flits=rng.choice([1, 2, 4, 64]),
        o_host=rng.choice([0, 5, 20, 60]),
        ratio_r=rng.choice([1.0, 2.0, 4.0]),
        adaptive_routing=rng.random() < 0.5,
        routing_tree=rng.choice(["bfs", "dfs"]),
        route_seed=rng.randrange(1 << 30),
    )


def _draw_topology(
    rng: random.Random, params: SimParams
) -> tuple[NetworkTopology, tuple[int, ...]]:
    """A connected (optionally degraded) topology for ``params``.

    Rare parameter corners (a random spanning tree demanding more ports on
    one switch than exist) make the generator raise; those draws are simply
    retried with a fresh sub-seed, which keeps the whole function total and
    still deterministic.
    """
    for attempt in range(64):
        try:
            topo = generate_irregular_topology(
                params,
                seed=rng.randrange(1 << 30),
                extra_link_fraction=rng.choice([0.0, 0.25, 0.5, 1.0]),
            )
        except (ValueError, AssertionError):
            continue
        failed: tuple[int, ...] = ()
        if rng.random() < 0.35:
            try:
                topo, failed_list = faults.degrade(
                    topo, rng.randint(1, 2), rng=rng
                )
                failed = tuple(failed_list)
            except ValueError:
                failed = ()  # topology cannot absorb failures; keep intact
        return topo, failed
    raise AssertionError(
        "topology generation failed 64 times in a row; parameter draw "
        f"{params} is infeasible"
    )


def _draw_fault_schedule(
    rng: random.Random, topo: NetworkTopology
) -> tuple[tuple[float, int], ...]:
    """A short runtime fault schedule for chaos scenarios.

    Links are sequentially removable (so reconfiguration can absorb every
    fault) and fire times are small -- early enough to race the multicast
    in flight, which is the interesting regime.
    """
    try:
        pairs = faults.schedule_faults(
            topo, rng.randint(1, 2), rng=rng, window=(1.0, 80.0)
        )
    except ValueError:
        return ()  # pure tree: no removable links; stay fault-free
    return tuple(pairs)


def _draw_churn_ops(
    rng: random.Random, num_nodes: int, source: int, dests: tuple[int, ...]
) -> tuple[tuple[str, int], ...]:
    """A short valid join/leave stream over the scenario's group.

    Availability-clamped the same way the scenario validator checks: joins
    pick from outside the group, leaves never take the last member, the
    root never churns.
    """
    members = set(dests)
    ops: list[tuple[str, int]] = []
    for _ in range(rng.randint(2, 6)):
        outside = sorted(set(range(num_nodes)) - members - {source})
        can_join = bool(outside)
        can_leave = len(members) > 1
        if not can_join and not can_leave:
            break
        if can_join and (not can_leave or rng.random() < 0.5):
            node = outside[rng.randrange(len(outside))]
            members.add(node)
            ops.append(("join", node))
        else:
            pool = sorted(members)
            node = pool[rng.randrange(len(pool))]
            members.remove(node)
            ops.append(("leave", node))
    return tuple(ops)


def _draw_collective_ops(
    rng: random.Random, num_nodes: int
) -> tuple[tuple[float, str, int], ...]:
    """A short open-loop collective admission schedule.

    Admission times are small and increasing (ops overlap in flight --
    the interesting regime for the workload driver's accounting) and kinds
    mix all three collectives.
    """
    ops: list[tuple[float, str, int]] = []
    t = 0.0
    for _ in range(rng.randint(2, 5)):
        t += rng.uniform(0.0, 60.0)
        kind = rng.choice(("broadcast", "allreduce", "barrier"))
        ops.append((round(t, 3), kind, rng.randrange(num_nodes)))
    return tuple(ops)


def generate_scenario(
    base_seed: int, index: int, fault_rate: float = 0.3,
    churn_rate: float = 0.25, vc_rate: float = 0.25,
    vc_count: int | None = None, collective_rate: float = 0.2,
) -> FuzzScenario:
    """Scenario ``index`` of the run seeded by ``base_seed`` (pure function).

    ``fault_rate`` is the probability that the scenario carries a runtime
    fault schedule (chaos mode); ``churn_rate`` the probability it carries
    a membership churn stream (churn mode); ``vc_rate`` the probability the
    fabric runs with multiple virtual channels per physical channel;
    ``collective_rate`` the probability it carries an open-loop collective
    admission schedule (collectives mode).  Pass 0.0 to disable any of
    them.  Each chance draw happens regardless of its rate, so the rest of
    the scenario is identical across rates for the same ``(seed, index)``.
    ``vc_count`` forces a specific lane count (overriding the draw, e.g.
    CI's fixed 4-VC stream); the draws still happen, keeping the stream
    aligned with unforced runs.
    """
    rng = random.Random(derive_seed(base_seed, "fuzz-scenario", index))
    params = _draw_params(rng)
    topo, failed = _draw_topology(rng, params)
    # The degraded/embedded topology is authoritative; re-sync the dims.
    params = params.replace(
        num_switches=topo.num_switches, num_nodes=topo.num_nodes
    )
    n = topo.num_nodes
    source = rng.randrange(n)
    pool = [x for x in range(n) if x != source]
    dests = tuple(rng.sample(pool, rng.randint(1, min(len(pool), 8))))
    roster = rng.sample(_SCHEME_POOL, rng.randint(2, 4))
    schemes = tuple(
        sorted(
            (scheme_spec(name, **kw) for name, kw in roster),
            key=lambda s: (s[0], s[1]),
        )
    )
    if any(name == "tree" for name, _ in schemes):
        # The tree scheme's N-bit header (plus source id) must leave payload
        # room in the packet -- the same capacity rule repro.lint enforces.
        node_id_bits = max(1, math.ceil(math.log2(n)))
        header_flits = math.ceil((n + node_id_bits) / 8)
        if header_flits >= params.packet_flits:
            params = params.replace(packet_flits=header_flits + rng.choice([1, 4]))
    fault_schedule: tuple[tuple[float, int], ...] = ()
    if rng.random() < fault_rate:
        fault_schedule = _draw_fault_schedule(rng, topo)
    churn_ops: tuple[tuple[str, int], ...] = ()
    if rng.random() < churn_rate:
        churn_ops = _draw_churn_ops(rng, n, source, dests)
    # VC draws come last (appended after the historical draws, so corpora
    # generated before the VC fabric replay identically) and are always
    # consumed -- stream stability across vc_rate values.
    vc_chance = rng.random()
    vc_lanes = rng.choice([2, 4])
    if vc_count is not None:
        params = params.replace(vc_count=vc_count)
    elif vc_chance < vc_rate:
        params = params.replace(vc_count=vc_lanes)
    # Collective draws come after the VC draws (the append-last rule: every
    # pre-collectives corpus replays with unchanged digests) and the chance
    # draw is always consumed -- stream stability across collective_rate.
    collective_chance = rng.random()
    collective_ops: tuple[tuple[float, str, int], ...] = ()
    if collective_chance < collective_rate:
        collective_ops = _draw_collective_ops(rng, n)
    return FuzzScenario(
        topo=topo,
        params=params,
        source=source,
        dests=dests,
        schemes=schemes,
        compare_backends=True,
        degraded_links=failed,
        fault_schedule=fault_schedule,
        churn_ops=churn_ops,
        collective_ops=collective_ops,
        label=f"seed={base_seed}/iter={index}",
    )
