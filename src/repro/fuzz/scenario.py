"""The fuzz scenario: one self-contained differential test case.

A :class:`FuzzScenario` bundles everything one oracle pass needs -- the
exact topology (embedded, not regenerated, so corpus entries survive any
future change to the topology generator), the simulation parameters, the
multicast operation (source, destination set), the scheme roster to run and
cross-compare, and whether the static-route cross-backend check applies.

Scenarios are plain data: they round-trip through JSON (via
:mod:`repro.topology.serialization`), hash stably (sha256 over canonical
JSON, the same contract the experiment runner uses for cell seeds), and can
be shrunk structurally by the minimizer without consulting the generator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.multicast import SCHEMES
from repro.params import SimParams
from repro.topology.graph import NetworkTopology
from repro.topology.serialization import topology_from_dict, topology_to_dict

FORMAT_VERSION = 1
"""Corpus/scenario JSON format version."""

SchemeSpec = tuple[str, tuple[tuple[str, object], ...]]
"""(scheme registry name, sorted keyword tuple), e.g. ``("path", (("strategy", "greedy"),))``."""


def scheme_spec(name: str, **kw: object) -> SchemeSpec:
    """Build a normalised scheme spec (keywords sorted for stable hashing)."""
    if name not in SCHEMES:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}")
    return (name, tuple(sorted(kw.items())))


def spec_label(spec: SchemeSpec) -> str:
    """Human-readable scheme spec name, e.g. ``path(strategy=greedy)``."""
    name, kw = spec
    if not kw:
        return name
    args = ",".join(f"{k}={v}" for k, v in kw)
    return f"{name}({args})"


@dataclass(frozen=True)
class FuzzScenario:
    """One complete fuzz case: system + operation + checks to run."""

    topo: NetworkTopology
    params: SimParams
    source: int
    dests: tuple[int, ...]
    schemes: tuple[SchemeSpec, ...]
    compare_backends: bool = True
    """Also run the merged static-route tree on both simulator backends and
    require identical per-destination tail times (skipped automatically when
    the deterministic unicast routes re-converge and no tree exists)."""

    degraded_links: tuple[int, ...] = ()
    """Link ids failed by :func:`repro.topology.faults.degrade` during
    generation (provenance only; the embedded topology is already degraded)."""

    fault_schedule: tuple[tuple[float, int], ...] = ()
    """Runtime ``(fire_time, link_id)`` faults armed mid-run (chaos mode):
    each scheme is wrapped in :class:`repro.chaos.ReliableMulticast`, the
    oracles assert exactly-once-after-retry delivery and per-epoch up*/down*
    legality, and the backend differential is skipped (the flit-level
    reference has no fault support).  Empty means today's fault-free run."""

    churn_ops: tuple[tuple[str, int], ...] = ()
    """Membership churn ops ``("join"|"leave", node)`` applied in order to a
    dynamic group rooted at ``source`` with initial members ``dests`` (churn
    mode): the oracle drives a graft/prune-patched group and a
    replan-every-change twin through the stream and requires identical
    delivery sets after every op.  Empty means a static destination set."""

    collective_ops: tuple[tuple[float, str, int], ...] = ()
    """Open-loop collective admissions ``(admit_time, kind, root)`` driven
    through the workload engine (collectives mode): every scheme in the
    roster drives the identical schedule via
    :func:`repro.workloads.driver.drive_admissions` and the oracle requires
    full accounting -- every admitted op completes by the drain horizon or
    is explicitly counted, and the fabric is conserved afterwards.  Empty
    means no collective workload."""

    label: str = ""
    """Free-form provenance tag, e.g. ``seed=7/iter=13``."""

    def __post_init__(self) -> None:
        if not self.dests:
            raise ValueError("scenario needs at least one destination")
        if self.source in self.dests:
            raise ValueError("source must not be a destination")
        if len(set(self.dests)) != len(self.dests):
            raise ValueError("duplicate destinations")
        for n in (self.source, *self.dests):
            if not 0 <= n < self.topo.num_nodes:
                raise ValueError(f"node {n} outside the embedded topology")
        if not self.schemes:
            raise ValueError("scenario needs at least one scheme")
        for t, _link in self.fault_schedule:
            if t < 0:
                raise ValueError("fault times must be non-negative")
        members = set(self.dests)
        for op, node in self.churn_ops:
            if op not in ("join", "leave"):
                raise ValueError(f"unknown churn op {op!r}")
            if not 0 <= node < self.topo.num_nodes:
                raise ValueError(f"churn node {node} outside the topology")
            if node == self.source:
                raise ValueError("the group root never churns")
            if op == "join":
                if node in members:
                    raise ValueError(f"join of existing member {node}")
                members.add(node)
            else:
                if node not in members:
                    raise ValueError(f"leave of non-member {node}")
                if len(members) == 1:
                    raise ValueError("churn must never empty the group")
                members.remove(node)
        # Kinds mirror repro.workloads.arrivals.COLLECTIVE_KINDS (kept as a
        # literal here so the scenario data layer stays import-light).
        for t, kind, root in self.collective_ops:
            if t < 0:
                raise ValueError("collective admit times must be non-negative")
            if kind not in ("broadcast", "allreduce", "barrier"):
                raise ValueError(f"unknown collective kind {kind!r}")
            if not 0 <= root < self.topo.num_nodes:
                raise ValueError(f"collective root {root} outside the topology")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready plain-data form (stable key order via json dumps).

        ``fault_schedule``, ``churn_ops``, and ``collective_ops`` are
        omitted when empty so scenarios without them keep the digests (and
        corpus file names) they had before chaos/churn/collectives mode
        existed; the default VC params
        (``vc_count=1``, ``vc_routing="updown"``) are stripped for the same
        reason -- single-lane scenarios keep their pre-VC digests.
        """
        params = asdict(self.params)
        if params.get("vc_count") == 1:
            params.pop("vc_count")
        if params.get("vc_routing") == "updown":
            params.pop("vc_routing")
        out = {
            "format": FORMAT_VERSION,
            "topology": topology_to_dict(self.topo),
            "params": params,
            "source": self.source,
            "dests": list(self.dests),
            "schemes": [
                {"name": name, "kw": {k: v for k, v in kw}}
                for name, kw in self.schemes
            ],
            "compare_backends": self.compare_backends,
            "degraded_links": list(self.degraded_links),
            "label": self.label,
        }
        if self.fault_schedule:
            out["fault_schedule"] = [[t, lk] for t, lk in self.fault_schedule]
        if self.churn_ops:
            out["churn_ops"] = [[op, n] for op, n in self.churn_ops]
        if self.collective_ops:
            out["collective_ops"] = [
                [t, kind, root] for t, kind, root in self.collective_ops
            ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzScenario":
        """Inverse of :meth:`to_dict`; validates the format version."""
        if data.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported scenario format {data.get('format')!r}"
            )
        return cls(
            topo=topology_from_dict(data["topology"]),
            params=SimParams(**data["params"]),
            source=int(data["source"]),
            dests=tuple(int(d) for d in data["dests"]),
            schemes=tuple(
                scheme_spec(s["name"], **s.get("kw", {}))
                for s in data["schemes"]
            ),
            compare_backends=bool(data.get("compare_backends", True)),
            degraded_links=tuple(data.get("degraded_links", ())),
            fault_schedule=tuple(
                (float(t), int(lk))
                for t, lk in data.get("fault_schedule", ())
            ),
            churn_ops=tuple(
                (str(op), int(n)) for op, n in data.get("churn_ops", ())
            ),
            collective_ops=tuple(
                (float(t), str(kind), int(root))
                for t, kind, root in data.get("collective_ops", ())
            ),
            label=str(data.get("label", "")),
        )

    def digest(self) -> str:
        """Stable content hash (sha256 over canonical JSON, sans label)."""
        data = self.to_dict()
        data.pop("label", None)
        payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Shrink-friendly derivation
    # ------------------------------------------------------------------
    def with_changes(self, **changes) -> "FuzzScenario":
        """A copy with fields replaced (params stay synced to the topology)."""
        out = replace(self, **changes)
        if out.params.num_switches != out.topo.num_switches or \
                out.params.num_nodes != out.topo.num_nodes:
            out = replace(
                out,
                params=out.params.replace(
                    num_switches=out.topo.num_switches,
                    num_nodes=out.topo.num_nodes,
                    ports_per_switch=out.topo.ports_per_switch,
                ),
            )
        return out

    def size_key(self) -> tuple[int, ...]:
        """Lexicographic 'cost' used by the minimizer to prefer smaller cases."""
        return (
            self.topo.num_switches,
            len(self.dests),
            self.topo.num_nodes,
            len(self.topo.links),
            self.params.message_flits,
            len(self.churn_ops),
            len(self.collective_ops),
        )


def derive_seed(base_seed: int, *key: object) -> int:
    """Deterministic sub-seed from ``(base_seed, key...)``.

    Same contract as the experiment runner's cell seeds: sha256 over
    canonical JSON (never :func:`hash`, which is salted per process), so a
    fuzz run is reproducible across platforms and invocations.
    """
    payload = json.dumps([base_seed, list(key)], sort_keys=True,
                         separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << 62)
