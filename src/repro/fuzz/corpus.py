"""The replayable regression corpus.

Every failure the fuzzer finds -- and every interesting minimized scenario
worth keeping -- becomes a JSON file that replays byte-deterministically
through the full oracle suite.  The committed corpus under
``tests/fuzz_corpus/`` runs as part of tier-1, so a scenario that once broke
an invariant can never silently break it again.

File naming: ``<slug>-<digest12>.json`` -- the content digest makes entries
collision-free and self-identifying; the slug keeps directory listings
readable.
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.fuzz.scenario import FuzzScenario


def entry_name(scenario: FuzzScenario, slug: str = "scenario") -> str:
    """Canonical file name for a corpus entry."""
    clean = re.sub(r"[^a-z0-9]+", "-", slug.lower()).strip("-") or "scenario"
    return f"{clean}-{scenario.digest()[:12]}.json"


def save_entry(
    scenario: FuzzScenario,
    directory: str | pathlib.Path,
    slug: str = "scenario",
    notes: str = "",
) -> pathlib.Path:
    """Write one scenario into ``directory``; returns the file path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_name(scenario, slug)
    data = scenario.to_dict()
    if notes:
        data["notes"] = notes
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: str | pathlib.Path) -> FuzzScenario:
    """Read one corpus entry back into a scenario."""
    return FuzzScenario.from_dict(json.loads(pathlib.Path(path).read_text()))


def corpus_files(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """All corpus entries in ``directory``, sorted by name (deterministic)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def load_corpus(
    directory: str | pathlib.Path,
) -> list[tuple[pathlib.Path, FuzzScenario]]:
    """Load every entry of a corpus directory in name order."""
    return [(path, load_entry(path)) for path in corpus_files(directory)]
