"""``python -m repro.fuzz`` entry point."""

import sys

from repro.fuzz.cli import main

if __name__ == "__main__":
    sys.exit(main())
