"""Collective operations built on the multicast schemes (extension).

The paper motivates multicast as the building block of collective
communication -- barriers, reductions, DSM cache-invalidation with
acknowledgement collection (its reference [2]).  This package implements
those composites on top of any of the four multicast schemes, so the
NI-vs-switch question can be asked of whole collectives, not just the bare
multicast.
"""

from repro.collectives.ops import (
    CollectiveResult,
    allreduce,
    barrier,
    broadcast,
    gather_to_root,
    multicast_with_acks,
    reduce_to_root,
    scatter_from_root,
)

__all__ = [
    "CollectiveResult",
    "broadcast",
    "barrier",
    "reduce_to_root",
    "gather_to_root",
    "scatter_from_root",
    "allreduce",
    "multicast_with_acks",
]
