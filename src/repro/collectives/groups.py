"""Compatibility shim: group management moved to :mod:`repro.groups`.

The MPI-communicator-style :class:`MulticastGroup` / :class:`GroupManager`
lifecycle grew a churn layer (incremental plan repair, bounded switch
multicast tables, a seeded churn driver) and now lives in the
:mod:`repro.groups` package; this module re-exports the static classes so
existing importers (``repro.mpi``, older tests) keep working.
"""

from __future__ import annotations

from repro.groups.membership import GroupManager, MulticastGroup

__all__ = ["GroupManager", "MulticastGroup"]
