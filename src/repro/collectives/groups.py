"""Persistent multicast groups (MPI-communicator-style management).

Real systems multicast to *registered groups* (an MPI communicator, a DSM
sharer set), not to ad-hoc destination lists: plans are computed when the
group (or membership) changes, and every send reuses them.  This manager
provides that lifecycle on top of any multicast scheme, with plan
invalidation on membership change.
"""

from __future__ import annotations

from typing import Callable

from repro.multicast import make_scheme
from repro.multicast.base import MulticastResult, MulticastScheme
from repro.sim.network import SimNetwork


class MulticastGroup:
    """One registered group: a root, members, and a cached plan."""

    def __init__(
        self,
        net: SimNetwork,
        group_id: int,
        root: int,
        members: list[int],
        scheme: MulticastScheme,
    ) -> None:
        self.net = net
        self.group_id = group_id
        self.root = root
        self.scheme = scheme
        self._members: set[int] = set()
        for m in members:
            self._validate_node(m)
            self._members.add(m)
        self._validate_node(root)
        if root in self._members:
            raise ValueError("root is implicitly a member; do not list it")
        if not self._members:
            raise ValueError("group needs at least one non-root member")
        self.sends = 0

    def _validate_node(self, node: int) -> None:
        if not 0 <= node < self.net.topo.num_nodes:
            raise ValueError(f"node {node} out of range")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[int]:
        """Current non-root members."""
        return frozenset(self._members)

    def join(self, node: int) -> None:
        """Add a member; invalidates cached plans."""
        self._validate_node(node)
        if node == self.root:
            raise ValueError("root is already in the group")
        if node in self._members:
            raise ValueError(f"node {node} already a member")
        self._members.add(node)
        self._invalidate()

    def leave(self, node: int) -> None:
        """Remove a member; invalidates cached plans."""
        if node not in self._members:
            raise ValueError(f"node {node} not a member")
        self._members.remove(node)
        if not self._members:
            raise ValueError("cannot remove the last member")
        self._invalidate()

    def _invalidate(self) -> None:
        self.scheme.enable_plan_cache()  # fresh, empty cache

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(
        self,
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        """Multicast one message from the root to the current members."""
        self.sends += 1
        return self.scheme.execute(
            self.net, self.root, sorted(self._members), on_complete
        )


class GroupManager:
    """Registry of multicast groups on one network."""

    def __init__(self, net: SimNetwork, default_scheme: str = "tree") -> None:
        self.net = net
        self.default_scheme = default_scheme
        self._groups: dict[int, MulticastGroup] = {}
        self._next_id = 0

    def create(
        self,
        root: int,
        members: list[int],
        scheme_name: str | None = None,
        **scheme_kw,
    ) -> MulticastGroup:
        """Register a group; returns the handle (ids are never reused)."""
        scheme = make_scheme(scheme_name or self.default_scheme, **scheme_kw)
        scheme.enable_plan_cache()
        group = MulticastGroup(
            self.net, self._next_id, root, members, scheme
        )
        self._groups[self._next_id] = group
        self._next_id += 1
        return group

    def get(self, group_id: int) -> MulticastGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            raise ValueError(f"no group {group_id}")

    def destroy(self, group_id: int) -> None:
        """Unregister a group."""
        if group_id not in self._groups:
            raise ValueError(f"no group {group_id}")
        del self._groups[group_id]

    def __len__(self) -> int:
        return len(self._groups)
