"""Timed collective operations over the simulated network.

These model the *communication* of each collective (message flow, overheads,
contention); payload semantics (the reduction operator, barrier counters)
contribute only their host-software cost, which is already captured by the
per-message host overhead.

All completion times are reported through :class:`CollectiveResult`; the
simulation must be run (``net.run()``) for results to fill in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.multicast import make_scheme
from repro.multicast.base import MulticastResult
from repro.sim.messaging import HostReceiver, host_send
from repro.sim.network import SimNetwork

ACK_FLITS = 8
"""Length of control packets (acks, barrier tokens): header + a few flits."""


def _resolve_participants(
    net: SimNetwork, root: int, participants: "list[int] | None"
) -> tuple[int, ...]:
    """Validate and normalise a collective's participant set.

    ``None`` means all nodes (the paper's whole-machine collectives); an
    explicit list models a job gang (e.g. one ML training job's workers)
    and must contain the root, hold no duplicates, and stay inside the
    topology.  Returned sorted for deterministic iteration order.
    """
    if participants is None:
        return tuple(range(net.topo.num_nodes))
    members = sorted(participants)
    if len(set(members)) != len(members):
        raise ValueError("duplicate collective participants")
    if root not in members:
        raise ValueError("the root must participate in its own collective")
    for n in members:
        if not 0 <= n < net.topo.num_nodes:
            raise ValueError(f"participant {n} outside the topology")
    return tuple(members)


def _complete_degenerate(
    net: SimNetwork,
    result: CollectiveResult,
    on_complete: "Callable[[CollectiveResult], None] | None",
) -> None:
    """Finish a single-participant collective.

    A collective over one node moves no data, but its host still runs the
    collective call's software path once, so completion is at launch plus
    one host overhead block (queued FIFO behind the host's other work) --
    never instantaneous and, crucially, never a hang.
    """

    def finish() -> None:
        result.node_times[result.root] = net.engine.now
        result.complete_time = net.engine.now
        if on_complete is not None:
            on_complete(result)

    net.hosts[result.root].cpu_task(finish)


@dataclass
class CollectiveResult:
    """Outcome of one collective operation."""

    kind: str
    root: int
    participants: tuple[int, ...]
    start_time: float
    complete_time: float | None = None
    node_times: dict[int, float] = field(default_factory=dict)
    """Per-node local completion times (meaning depends on the collective:
    release receipt for barriers, delivery for broadcasts, ...)."""

    @property
    def complete(self) -> bool:
        return self.complete_time is not None

    @property
    def latency(self) -> float:
        if self.complete_time is None:
            raise RuntimeError(f"{self.kind} not complete")
        return self.complete_time - self.start_time


def _send_control(net: SimNetwork, src: int, dst: int,
                  on_delivered: Callable[[float], None]) -> None:
    """One short control message (ack/token) with full host+NI overheads."""
    receiver = HostReceiver(net.hosts[dst], 1, on_delivered)
    steer = net.unicast_steer(dst)

    def launch() -> None:
        net.hosts[src].launch_worm(
            steer,
            initial_state=None,
            on_delivered=lambda _n, _t: receiver.packet_arrived(),
            length=ACK_FLITS,
            label=f"ctl:{src}->{dst}",
        )

    host_send(net.hosts[src], [launch])


def broadcast(
    net: SimNetwork,
    root: int,
    scheme_name: str = "tree",
    on_complete: Callable[[CollectiveResult], None] | None = None,
    participants: list[int] | None = None,
    **scheme_kw,
) -> CollectiveResult:
    """Broadcast from the root to every other participant (default: all)."""
    members = _resolve_participants(net, root, participants)
    dests = [n for n in members if n != root]
    result = CollectiveResult("broadcast", root, members, net.engine.now)
    if not dests:
        _complete_degenerate(net, result, on_complete)
        return result

    def done(mres: MulticastResult) -> None:
        result.node_times.update(mres.delivery_times)
        result.complete_time = net.engine.now
        if on_complete is not None:
            on_complete(result)

    make_scheme(scheme_name, **scheme_kw).execute(net, root, dests, done)
    return result


def multicast_with_acks(
    net: SimNetwork,
    source: int,
    dests: list[int],
    scheme_name: str = "tree",
    on_complete: Callable[[CollectiveResult], None] | None = None,
    **scheme_kw,
) -> CollectiveResult:
    """Multicast followed by ack collection at the source.

    This is the DSM cache-invalidation pattern of the paper's reference [2]:
    the operation completes when the *source* has received an ack from every
    destination.
    """
    result = CollectiveResult(
        "multicast+acks", source, tuple([source] + list(dests)), net.engine.now
    )
    pending = {"acks": len(dests)}

    def on_ack(dest: int, t: float) -> None:
        result.node_times[dest] = t
        pending["acks"] -= 1
        if pending["acks"] == 0:
            result.complete_time = net.engine.now
            if on_complete is not None:
                on_complete(result)

    scheme = make_scheme(scheme_name, **scheme_kw)
    mres = scheme.execute(net, source, list(dests))
    # Each destination acks as soon as its host has the message.
    mres.dest_hook = lambda dest, _t: _send_control(
        net, dest, source, lambda t, d=dest: on_ack(d, t)
    )
    return result


def barrier(
    net: SimNetwork,
    root: int = 0,
    scheme_name: str = "tree",
    on_complete: Callable[[CollectiveResult], None] | None = None,
    participants: list[int] | None = None,
    arrivals: dict[int, float] | None = None,
    **scheme_kw,
) -> CollectiveResult:
    """Participant barrier: gather tokens at the root, multicast the release.

    Every participant sends an arrival token to the root (control message);
    when the root has all of them it multicasts the release; each node's
    barrier exit time is its release delivery.  ``arrivals`` optionally maps
    a node to the absolute time it reaches the barrier (its token launches
    then rather than immediately) -- the barrier cannot complete before the
    last participant has launched.

    A single-participant barrier is degenerate: nobody to wait for, so it
    completes after one host overhead block (it must never hang waiting for
    tokens that will never arrive).
    """
    members = _resolve_participants(net, root, participants)
    others = [n for n in members if n != root]
    result = CollectiveResult("barrier", root, members, net.engine.now)
    if not others:
        _complete_degenerate(net, result, on_complete)
        return result
    pending = {"tokens": len(others)}

    def release_done(mres: MulticastResult) -> None:
        result.node_times.update(mres.delivery_times)
        result.node_times[root] = net.engine.now
        result.complete_time = net.engine.now
        if on_complete is not None:
            on_complete(result)

    def on_token(_t: float) -> None:
        pending["tokens"] -= 1
        if pending["tokens"] == 0:
            make_scheme(scheme_name, **scheme_kw).execute(
                net, root, others, release_done
            )

    for n in others:
        when = (arrivals or {}).get(n)
        if when is None:
            _send_control(net, n, root, on_token)
        else:
            net.engine.at(
                when, lambda n=n: _send_control(net, n, root, on_token)
            )
    return result


def gather_to_root(
    net: SimNetwork,
    root: int = 0,
    on_complete: Callable[[CollectiveResult], None] | None = None,
) -> CollectiveResult:
    """All-to-one gather: every node sends its full message to the root.

    Direct (non-combining) gather, as MPI_Gather semantics require distinct
    payloads; the root's NI and I/O bus serialise the incoming messages.
    """
    nodes = list(range(net.topo.num_nodes))
    others = [n for n in nodes if n != root]
    result = CollectiveResult("gather", root, tuple(nodes), net.engine.now)
    pending = {"left": len(others)}
    m = net.params.message_packets

    def one_done(sender: int, t: float) -> None:
        result.node_times[sender] = t
        pending["left"] -= 1
        if pending["left"] == 0:
            result.complete_time = net.engine.now
            if on_complete is not None:
                on_complete(result)

    for n in others:
        receiver = HostReceiver(
            net.hosts[root], m, lambda t, s=n: one_done(s, t)
        )
        steer = net.unicast_steer(root)

        def launch(n=n, receiver=receiver, steer=steer) -> None:
            net.hosts[n].launch_worm(
                steer,
                initial_state=None,
                on_delivered=lambda _x, _t: receiver.packet_arrived(),
                label=f"gat:{n}->{root}",
            )

        host_send(net.hosts[n], [launch for _ in range(m)])
    return result


def scatter_from_root(
    net: SimNetwork,
    root: int = 0,
    on_complete: Callable[[CollectiveResult], None] | None = None,
) -> CollectiveResult:
    """One-to-all scatter: the root sends a *distinct* message to each node.

    Personalised data cannot be multicast, so the root issues one
    conventional send per destination; its host CPU, I/O bus, and injection
    link serialise the operation (the classic root bottleneck).
    """
    nodes = list(range(net.topo.num_nodes))
    others = [n for n in nodes if n != root]
    result = CollectiveResult("scatter", root, tuple(nodes), net.engine.now)
    pending = {"left": len(others)}
    m = net.params.message_packets

    def one_done(dest: int, t: float) -> None:
        result.node_times[dest] = t
        pending["left"] -= 1
        if pending["left"] == 0:
            result.complete_time = net.engine.now
            if on_complete is not None:
                on_complete(result)

    for n in others:
        receiver = HostReceiver(
            net.hosts[n], m, lambda t, d=n: one_done(d, t)
        )
        steer = net.unicast_steer(n)

        def launch(n=n, receiver=receiver, steer=steer) -> None:
            net.hosts[root].launch_worm(
                steer,
                initial_state=None,
                on_delivered=lambda _x, _t: receiver.packet_arrived(),
                label=f"sca:{root}->{n}",
            )

        host_send(net.hosts[root], [launch for _ in range(m)])
    return result


def allreduce(
    net: SimNetwork,
    root: int = 0,
    scheme_name: str = "tree",
    on_complete: Callable[[CollectiveResult], None] | None = None,
    participants: list[int] | None = None,
    **scheme_kw,
) -> CollectiveResult:
    """Reduce-to-root followed by a broadcast of the result.

    The broadcast leg uses the chosen multicast scheme, so the NI-vs-switch
    question applies to half of the operation's critical path.

    A single-participant allreduce is degenerate -- the node combines with
    itself -- and completes after one host overhead block; it must neither
    hang in the reduce leg nor launch an empty multicast.
    """
    members = _resolve_participants(net, root, participants)
    result = CollectiveResult("allreduce", root, members, net.engine.now)
    if len(members) == 1:
        _complete_degenerate(net, result, on_complete)
        return result

    def bcast_done(b: CollectiveResult) -> None:
        result.node_times.update(b.node_times)
        result.complete_time = net.engine.now
        if on_complete is not None:
            on_complete(result)

    def reduce_done(_r: CollectiveResult) -> None:
        broadcast(net, root, scheme_name, bcast_done,
                  participants=list(members), **scheme_kw)

    reduce_to_root(net, root, reduce_done, participants=list(members))
    return result


def reduce_to_root(
    net: SimNetwork,
    root: int = 0,
    on_complete: Callable[[CollectiveResult], None] | None = None,
    participants: list[int] | None = None,
) -> CollectiveResult:
    """All-to-one reduction over a binomial combining tree.

    The inverse of the binomial multicast: leaves send full messages up a
    binomial tree; each interior node combines (its host overhead models the
    operator) and forwards one message to its parent.  Completion is the
    root's receipt of its last child's contribution.  A single-participant
    reduce combines locally: one host overhead block, no messages.
    """
    from repro.multicast.binomial import build_binomial_tree
    from repro.multicast.ordering import contention_aware_order

    members = _resolve_participants(net, root, participants)
    nodes = list(members)
    others = [n for n in nodes if n != root]
    if not others:
        result = CollectiveResult("reduce", root, members, net.engine.now)
        _complete_degenerate(net, result, on_complete)
        return result
    ordered = contention_aware_order(net.topo, net.routing, root, others)
    tree = build_binomial_tree([root] + ordered)
    parent: dict[int, int] = {}
    for p, children in tree.items():
        for c in children:
            parent[c] = p
    result = CollectiveResult("reduce", root, members, net.engine.now)
    n_packets = net.params.message_packets
    waiting = {n: len(tree[n]) for n in nodes}

    def contribution_ready(node: int) -> None:
        """All of ``node``'s children combined; send up (or finish)."""
        if node == root:
            result.node_times[root] = net.engine.now
            result.complete_time = net.engine.now
            if on_complete is not None:
                on_complete(result)
            return
        dst = parent[node]
        receiver = HostReceiver(
            net.hosts[dst], n_packets, lambda t: child_arrived(dst, t)
        )
        steer = net.unicast_steer(dst)

        def launch() -> None:
            net.hosts[node].launch_worm(
                steer,
                initial_state=None,
                on_delivered=lambda _n, _t: receiver.packet_arrived(),
                label=f"red:{node}->{dst}",
            )

        host_send(net.hosts[node], [launch for _ in range(n_packets)])

    def child_arrived(node: int, t: float) -> None:
        result.node_times[node] = t
        waiting[node] -= 1
        if waiting[node] == 0:
            contribution_ready(node)

    for n in nodes:
        if waiting[n] == 0:
            contribution_ready(n)
    return result
