"""Simulation parameters for the ICPP'98 multicast comparison study.

Every constant the paper mentions (and every constant the OCR of the paper
dropped -- see DESIGN.md section 5 for the reconstruction table) lives in a
single :class:`SimParams` dataclass.  All timing quantities are expressed in
*cycles* of the switch clock; bandwidths are expressed in flits/cycle.

The paper's defaults, as reconstructed:

* 32 nodes attached to eight 8-port switches in a random irregular topology.
* 1-byte flits, 1 flit/cycle links, 1-cycle link propagation, 1-cycle
  crossbar traversal, 1-cycle routing decision at each switch.
* 128-flit packets, 1-packet messages.
* Host software overhead ``o_host`` = 1000 cycles per message end
  (send or receive); NI processor overhead ``o_ni = o_host / R`` per message
  (or per forwarded replica stream), with the ratio ``R`` defaulting to 2.
* I/O bus (host <-> NI DMA) bandwidth 2.66 flits/cycle (266 MB/s at a
  10 ns cycle and 1-byte flits).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class SimParams:
    """All knobs of the simulated system.

    The instance is frozen so a parameter set can be hashed/shared safely
    between experiment sweeps; use :meth:`replace` to derive variants.
    """

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    num_nodes: int = 32
    """Number of processing nodes (hosts) in the system."""

    num_switches: int = 8
    """Number of switches in the irregular interconnect."""

    ports_per_switch: int = 8
    """Ports per switch, shared between host links and switch-switch links."""

    topology_seed: int = 1
    """Seed of the random irregular topology generator."""

    # ------------------------------------------------------------------
    # Fabric timing (cycles)
    # ------------------------------------------------------------------
    link_delay: int = 1
    """Propagation time of a flit across a physical link."""

    switch_delay: int = 1
    """Crossbar traversal time from input to output buffer of a switch."""

    routing_delay: int = 1
    """Header decode/route decision time, uniform across all three schemes."""

    input_buffer_flits: int = 64
    """Flit capacity of each switch input port buffer (cut-through storage)."""

    # ------------------------------------------------------------------
    # Message structure
    # ------------------------------------------------------------------
    packet_flits: int = 128
    """Flits per packet (includes header; the paper's default packet size)."""

    message_packets: int = 1
    """Packets per multicast message (message_flits = packets * packet_flits)."""

    # ------------------------------------------------------------------
    # Host / network interface
    # ------------------------------------------------------------------
    o_host: int = 1000
    """Host processor software overhead per message send or receive (cycles)."""

    ratio_r: float = 2.0
    """R = o_host / o_ni.  The paper's central parameter."""

    o_ni_per_packet: int = 0
    """Additional NI processor cost per individual packet handled (cycles).

    The paper charges NI overhead per *message* ("the communication software
    overhead per message at the ... NI processors"); packets of a message
    stream through DMA engines without re-running NI software.  This knob
    re-introduces a per-packet NI cost for ablation studies (E8)."""

    io_bus_flits_per_cycle: float = 2.66
    """DMA bandwidth of the host I/O bus in flits/cycle (266 MB/s @ 10ns/1B)."""

    ni_store_and_forward: bool = False
    """If True, the smart NI forwards a packet only after fully receiving it
    (ablation of the FPFS cut-through forwarding at the NI)."""

    # ------------------------------------------------------------------
    # Routing policy
    # ------------------------------------------------------------------
    adaptive_routing: bool = True
    """Adaptively pick among minimal up*/down* paths (Autonet-style) when
    True; always take the lexicographically first minimal path when False."""

    routing_tree: str = "bfs"
    """Link-orientation rule: "bfs" (the paper's Autonet rule) or "dfs"
    (DFS-preorder labels, a la Sancho & Robles; ablation E8)."""

    route_seed: int = 7
    """Seed for adaptive route selection tie-breaking."""

    # ------------------------------------------------------------------
    # Virtual channels
    # ------------------------------------------------------------------
    vc_count: int = 1
    """Virtual channels (lanes) per physical channel.  Each lane is an
    independent full-rate grant slot of the physical channel: a channel with
    ``vc_count`` lanes admits that many concurrent worms, each of which sees
    the channel's full per-lane bandwidth (the multi-lane MIN model of
    arXiv:2007.02550, not a time-multiplexed one).  ``vc_count=1`` is
    byte-identical to the historical single-lane fabric."""

    vc_routing: str = "updown"
    """Lane routing discipline: "updown" restricts every lane to the
    up*/down* order (pure blocking relief), "escape" restricts only lane 0
    to up*/down* and lets lanes >= 1 take minimal adaptive shortcuts that are
    free at decision time (Duato-style escape-channel deadlock freedom; see
    docs/virtual_channels.md)."""

    @property
    def o_ni(self) -> int:
        """NI processor overhead per message (or per forwarded replica
        stream) handled, in cycles; = o_host / R."""
        return max(1, round(self.o_host / self.ratio_r))

    @property
    def message_flits(self) -> int:
        """Total flits in one multicast message."""
        return self.packet_flits * self.message_packets

    def replace(self, **changes) -> "SimParams":
        """Return a copy of this parameter set with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Raise ``ValueError`` on physically meaningless parameter sets."""
        if self.num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.num_switches < 1:
            raise ValueError("need at least 1 switch")
        if self.ports_per_switch < 2:
            raise ValueError("switches need at least 2 ports")
        if self.num_nodes > self.num_switches * (self.ports_per_switch - 1) and self.num_switches > 1:
            raise ValueError(
                "not enough switch ports to attach all nodes and keep the "
                "switch graph connected"
            )
        if self.num_switches > 1 and self.ports_per_switch * self.num_switches < self.num_nodes + 2 * (self.num_switches - 1):
            raise ValueError("not enough ports for nodes plus a spanning set of inter-switch links")
        if self.packet_flits < 2:
            raise ValueError("a packet needs a header flit and at least one payload flit")
        if self.message_packets < 1:
            raise ValueError("messages have at least one packet")
        if self.o_host < 0:
            raise ValueError("o_host must be non-negative")
        if self.o_ni_per_packet < 0:
            raise ValueError("o_ni_per_packet must be non-negative")
        if self.ratio_r <= 0:
            raise ValueError("R must be positive")
        if self.io_bus_flits_per_cycle <= 0:
            raise ValueError("I/O bus bandwidth must be positive")
        if min(self.link_delay, self.switch_delay, self.routing_delay) < 0:
            raise ValueError("delays must be non-negative")
        if self.routing_tree not in ("bfs", "dfs"):
            raise ValueError('routing_tree must be "bfs" or "dfs"')
        if self.input_buffer_flits < 1:
            raise ValueError("input buffers hold at least one flit")
        if self.vc_count < 1:
            raise ValueError("channels need at least one virtual channel")
        if self.vc_routing not in ("updown", "escape"):
            raise ValueError('vc_routing must be "updown" or "escape"')
        if self.vc_routing == "escape" and self.vc_count < 2:
            raise ValueError(
                "escape routing needs at least 2 VCs (lane 0 is the escape lane)"
            )


DEFAULT_PARAMS = SimParams()
"""The paper's default configuration (see DESIGN.md for the reconstruction)."""
