"""Contention-free closed-form latency predictions.

Derived directly from the model definition (DESIGN.md section 4):

* header advance per switch-switch hop: routing + crossbar + link;
* injection costs one link crossing, delivery a crossbar + link;
* payload streams at 1 flit/cycle behind the header (tail = header + L - 1);
* a conventional message adds, around the network part, the host overhead,
  the message DMA, and the NI overhead on each side.
"""

from __future__ import annotations

import math

from repro.multicast.treeworm import TreeWormPlan, _down_distance_table
from repro.params import SimParams
from repro.sim.network import SimNetwork


def unicast_packet_network_latency(params: SimParams, hops: int) -> float:
    """NI-to-NI tail latency of one packet across ``hops`` switch links."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    header = (
        params.link_delay
        + params.routing_delay
        + hops * (params.switch_delay + params.link_delay + params.routing_delay)
        + (params.switch_delay + params.link_delay)
    )
    return header + params.packet_flits - 1


def unicast_message_latency(params: SimParams, hops: int) -> float:
    """Host-to-host latency of a single-packet message (exact).

    For multi-packet messages the receive-side overlap of DMA and wire time
    makes the closed form configuration-dependent; the simulator is the
    reference there.
    """
    if params.message_packets != 1:
        raise ValueError("closed form is exact only for single-packet messages")
    dma = params.packet_flits / params.io_bus_flits_per_cycle
    return (
        2 * params.o_host
        + 2 * dma
        + 2 * params.o_ni
        + unicast_packet_network_latency(params, hops)
    )


def binomial_multicast_latency_bound(params: SimParams, n_dests: int) -> float:
    """A lower bound on the software binomial multicast's latency.

    ceil(log2(n+1)) sequential communication steps, each costing at least
    one host send overhead, one NI overhead, and one receive-side host
    overhead on the critical path.  Real latency adds DMA and wire time, so
    the simulator must always measure at least this.
    """
    if n_dests < 1:
        raise ValueError("need at least one destination")
    steps = math.ceil(math.log2(n_dests + 1))
    return steps * (params.o_host + params.o_ni) + params.o_host


def tree_worm_dest_hops(
    net: SimNetwork, plan: TreeWormPlan, dest: int
) -> int:
    """Switch-link hops the tree worm's copy for ``dest`` traverses.

    Destinations attached to an up-path switch are dropped during the climb
    (at that switch's path index); all others ride to the turn switch and
    descend along a minimal down path (the steer's priority encoding always
    picks a port one hop closer, so down hops = the down-DAG distance).
    """
    dest_switch = net.topo.switch_of_node(dest)
    if dest_switch in plan.up_switch_path:
        return plan.up_switch_path.index(dest_switch)
    down = _down_distance_table(net)
    up_hops = len(plan.up_switch_path) - 1
    dd = down[plan.turn_switch].get(dest_switch)
    if dd is None:
        raise ValueError(f"turn switch cannot reach destination {dest}")
    return up_hops + dd


def tree_worm_latency(
    net: SimNetwork, source: int, dests: list[int]
) -> float:
    """Exact contention-free latency of the tree-worm multicast (1 packet).

    The single worm pays one sender-side host+DMA+NI pipeline; each
    destination's copy arrives after its hop count; the slowest destination
    (plus its receive pipeline) sets the multicast latency.
    """
    params = net.params
    if params.message_packets != 1:
        raise ValueError("closed form is exact only for single-packet messages")
    from repro.multicast.treeworm import plan_tree_worm

    plan = plan_tree_worm(net, net.topo.switch_of_node(source), dests)
    dma = params.packet_flits / params.io_bus_flits_per_cycle
    send_side = params.o_host + dma + params.o_ni
    worst = max(
        unicast_packet_network_latency(
            params, tree_worm_dest_hops(net, plan, d)
        )
        for d in dests
    )
    recv_side = params.o_ni + dma + params.o_host
    return send_side + worst + recv_side
