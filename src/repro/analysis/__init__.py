"""Closed-form latency models (contention-free) for simulator validation.

Every model here predicts, analytically, what the event simulator must
measure when exactly one operation runs on an idle network.  The test-suite
cross-checks simulator output against these predictions on randomly drawn
cases -- a model-vs-model consistency net that catches timing regressions
in either implementation.
"""

from repro.analysis.closedform import (
    unicast_message_latency,
    unicast_packet_network_latency,
    binomial_multicast_latency_bound,
    tree_worm_latency,
)
from repro.analysis.requirements import (
    SchemeRequirements,
    render_requirements,
    requirements_table,
)
from repro.analysis.saturation import SaturationEstimate, predict_saturation

__all__ = [
    "unicast_packet_network_latency",
    "unicast_message_latency",
    "binomial_multicast_latency_bound",
    "tree_worm_latency",
    "SchemeRequirements",
    "requirements_table",
    "render_requirements",
    "SaturationEstimate",
    "predict_saturation",
]
