"""Analytic saturation prediction via bottleneck utilisation.

Open-loop multicast traffic saturates when some resource class's demand
reaches capacity.  For each scheme this module computes, from *static plans*
on sampled destination draws, the average per-operation demand on every
resource class -- host CPU cycles, NI cycles, I/O-bus flits, injection-link
flits, fabric-link flits -- converts demand to utilisation per unit of
effective applied load, and reports the binding bottleneck and the load at
which it saturates.

This is the back-of-envelope a designer would run before simulating; the
test-suite checks it brackets the simulated saturation points and predicts
the right scheme ordering (binomial first, tree last).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.multicast import make_scheme
from repro.multicast.binomial import UnicastBinomialScheme
from repro.multicast.kbinomial import NIKBinomialScheme
from repro.multicast.pathworm import PathWormScheme
from repro.multicast.treeworm import TreeWormScheme, _down_distance_table
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class SaturationEstimate:
    """Predicted saturation point of one scheme at one degree."""

    scheme: str
    degree: int
    bottleneck: str
    saturation_load: float
    """Effective applied load (flits/cycle/node) at which the bottleneck
    resource class reaches utilisation 1."""

    utilization_per_unit_load: dict[str, float]


def _unicast_demand(net: SimNetwork, src: int, dst: int) -> dict[str, float]:
    """Resource demand of one conventional unicast message."""
    p = net.params
    hops = net.routing.distance(
        net.topo.switch_of_node(src), net.topo.switch_of_node(dst)
    )
    F = p.message_flits
    return {
        "cpu": 2 * p.o_host,
        "ni": 2 * p.o_ni,
        "bus": 2 * F,
        "inject": F,
        "links": F * hops,
    }


def _scheme_demand(
    net: SimNetwork, scheme_name: str, source: int, dests: list[int]
) -> dict[str, float]:
    """Average total resource demand of one multicast operation."""
    p = net.params
    F = p.message_flits
    d = len(dests)
    demand = {"cpu": 0.0, "ni": 0.0, "bus": 0.0, "inject": 0.0, "links": 0.0}

    def add(other: dict[str, float]) -> None:
        for k, v in other.items():
            demand[k] += v

    scheme = make_scheme(scheme_name)
    if isinstance(scheme, UnicastBinomialScheme):
        tree = scheme.plan(net, source, dests)
        for parent, children in tree.items():
            for child in children:
                add(_unicast_demand(net, parent, child))
    elif isinstance(scheme, NIKBinomialScheme):
        _k, tree = scheme.plan(net, source, dests)
        # one host send at the source, one host receive per destination
        demand["cpu"] += p.o_host * (1 + d)
        demand["bus"] += F * (1 + d)
        for parent, children in tree.items():
            if parent != source and children:
                demand["ni"] += p.o_ni  # interior receive processing
            demand["ni"] += p.o_ni * len(children)  # per-child streams
            for child in children:
                u = _unicast_demand(net, parent, child)
                demand["inject"] += u["inject"]
                demand["links"] += u["links"]
        demand["ni"] += p.o_ni * d  # leaf receive processing (upper bound)
    elif isinstance(scheme, PathWormScheme):
        plan = scheme.plan(net, source, dests)
        for worm in plan.worms:
            demand["cpu"] += p.o_host
            demand["ni"] += p.o_ni
            demand["bus"] += F
            demand["inject"] += F
            demand["links"] += F * len(worm.links)
        demand["cpu"] += p.o_host * d
        demand["ni"] += p.o_ni * d
        demand["bus"] += F * d
    elif isinstance(scheme, TreeWormScheme):
        demand["cpu"] += p.o_host * (1 + d)
        demand["ni"] += p.o_ni * (1 + d)
        demand["bus"] += F * (1 + d)
        demand["inject"] += F
        # worm channel count: up path + down distribution tree edges
        from repro.multicast.treeworm import plan_tree_worm

        plan = plan_tree_worm(net, net.topo.switch_of_node(source), dests)
        down = _down_distance_table(net)
        covered_switches = {
            net.topo.switch_of_node(dst) for dst in dests
        }
        down_edges = sum(
            down[plan.turn_switch].get(s, 0) for s in covered_switches
        )
        demand["links"] += F * (len(plan.up_switch_path) - 1 + down_edges)
    else:  # pragma: no cover
        raise ValueError(f"no demand model for scheme {scheme_name!r}")
    return demand


def predict_saturation(
    net: SimNetwork,
    scheme_name: str,
    degree: int,
    samples: int = 12,
    seed: int = 77,
) -> SaturationEstimate:
    """Bottleneck analysis over sampled destination draws.

    Capacities per cycle: host CPUs N cycles, NI processors N cycles, I/O
    buses N x rate flits, injection links N flits, fabric links 2 x links
    flits (each link carries one flit per direction per cycle).
    """
    p = net.params
    topo = net.topo
    n = topo.num_nodes
    rng = random.Random(seed)
    totals = {"cpu": 0.0, "ni": 0.0, "bus": 0.0, "inject": 0.0, "links": 0.0}
    for _ in range(samples):
        src = rng.randrange(n)
        dests = rng.sample([x for x in range(n) if x != src], degree)
        dem = _scheme_demand(net, scheme_name, src, dests)
        for k, v in dem.items():
            totals[k] += v / samples

    capacity = {
        "cpu": float(n),
        "ni": float(n),
        "bus": n * p.io_bus_flits_per_cycle,
        "inject": float(n),
        "links": 2.0 * max(1, len(topo.links)),
    }
    # ops/cycle system-wide at unit effective load: N nodes x 1/(d*F) each.
    ops_per_cycle = n / (degree * p.message_flits)
    util_per_unit = {
        k: ops_per_cycle * totals[k] / capacity[k] for k in totals
    }
    bottleneck = max(util_per_unit, key=lambda k: util_per_unit[k])
    sat = 1.0 / util_per_unit[bottleneck]
    return SaturationEstimate(
        scheme=scheme_name,
        degree=degree,
        bottleneck=bottleneck,
        saturation_load=sat,
        utilization_per_unit_load=util_per_unit,
    )
