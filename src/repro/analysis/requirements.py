"""Quantified architectural requirements of the three schemes (paper §3.3).

Section 3.3 compares the schemes' hardware/firmware costs qualitatively:
header encode/decode complexity, per-switch storage, NI memory, and how each
grows with system size.  This module turns that discussion into numbers for
a concrete system, so the cost side of the paper's cost/performance
trade-off is reproducible too.

Conventions:

* one "node id" field is ``ceil(log2 N)`` bits;
* the tree scheme's bit-string header carries one bit per node (N bits), and
  every *down* output port of every switch stores an N-bit reachability
  string;
* a path worm's header holds, per replicating switch on its path, a node-id
  field plus a P-bit port mask (P = ports per switch);
* the NI scheme needs no switch support, but the interface buffers packets
  until every child's replica is injected, and the source stores the
  k-binomial tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.multicast.pathworm import MulticastPathPlan
from repro.params import SimParams
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class SchemeRequirements:
    """Hardware/firmware footprint of one scheme on one system."""

    scheme: str
    header_bits: int
    """Multicast header size for a worst-case (broadcast) destination set."""

    switch_storage_bits: int
    """Total routing/reachability state added across all switches."""

    switch_replication: bool
    """Whether switches need worm-replication (and its deadlock-free
    buffering) support."""

    ni_buffer_flits: int
    """Extra NI memory for multicast duties (replica buffering)."""

    ni_firmware: bool
    """Whether the NI processor firmware must be multicast-aware."""


def node_id_bits(params: SimParams) -> int:
    """Bits to name one node."""
    return max(1, math.ceil(math.log2(params.num_nodes)))


def tree_scheme_requirements(net: SimNetwork) -> SchemeRequirements:
    """Bit-string tree worms: N-bit headers, reachability strings at every
    down port, replication support; stock NI."""
    params = net.params
    n = params.num_nodes
    down_ports = sum(
        len(net.routing.down_links_of(s))
        for s in range(net.topo.num_switches)
    )
    return SchemeRequirements(
        scheme="tree",
        header_bits=n,
        switch_storage_bits=down_ports * n,
        switch_replication=True,
        ni_buffer_flits=0,
        ni_firmware=False,
    )


def path_scheme_requirements(
    net: SimNetwork, worst_plan: MulticastPathPlan | None = None
) -> SchemeRequirements:
    """Multi-drop path worms: per-hop (node id + port mask) header fields,
    no reachability storage, replication support; stock NI.

    ``worst_plan`` bounds the header by the longest planned worm; without
    one, the bound is the switch-count (a path visits each switch once per
    phase segment at most).
    """
    params = net.params
    per_field = node_id_bits(params) + params.ports_per_switch
    if worst_plan is not None:
        max_switches = max(
            (len(w.switch_path) for w in worst_plan.worms), default=1
        )
    else:
        max_switches = net.topo.num_switches
    return SchemeRequirements(
        scheme="path",
        header_bits=per_field * max_switches,
        switch_storage_bits=0,
        switch_replication=True,
        ni_buffer_flits=0,
        ni_firmware=False,
    )


def ni_scheme_requirements(net: SimNetwork, max_children: int = 8) -> SchemeRequirements:
    """k-binomial FPFS: plain unicast headers and stock switches, but
    multicast-aware NI firmware plus buffering for one packet per pending
    replica stream."""
    params = net.params
    return SchemeRequirements(
        scheme="ni",
        header_bits=node_id_bits(params),
        switch_storage_bits=0,
        switch_replication=False,
        ni_buffer_flits=params.packet_flits * max_children,
        ni_firmware=True,
    )


def requirements_table(net: SimNetwork) -> list[SchemeRequirements]:
    """All three schemes' requirements on one system, tree/path/ni order."""
    return [
        tree_scheme_requirements(net),
        path_scheme_requirements(net),
        ni_scheme_requirements(net),
    ]


def render_requirements(rows: list[SchemeRequirements]) -> str:
    """Aligned text table of a requirements comparison."""
    header = (
        f"{'scheme':<8}{'header(bits)':>14}{'switch store(bits)':>20}"
        f"{'replication':>13}{'NI buffer(flits)':>18}{'NI firmware':>13}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r.scheme:<8}{r.header_bits:>14}{r.switch_storage_bits:>20}"
            f"{str(r.switch_replication):>13}{r.ni_buffer_flits:>18}"
            f"{str(r.ni_firmware):>13}"
        )
    return "\n".join(lines)
