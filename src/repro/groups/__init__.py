"""Dynamic multicast groups: membership churn with incremental plan repair.

The membership lifecycle (:mod:`repro.groups.membership`), the
graft/prune plan surgery (:mod:`repro.groups.repair`), the bounded
per-switch multicast-table model (:mod:`repro.groups.tables`), and the
seeded churn driver with its patched-vs-replanned paired harness
(:mod:`repro.groups.churn`).  See docs/groups.md.
"""

from repro.groups.churn import (
    ChurnEvent,
    ChurnReport,
    churn_stream,
    run_paired_churn,
)
from repro.groups.membership import (
    DEFAULT_QUALITY_BOUND,
    DynamicGroup,
    DynamicGroupManager,
    GroupManager,
    MulticastGroup,
    PlanState,
    RepairStats,
    repair_kind,
)
from repro.groups.repair import (
    graft_path_plan,
    graft_tree_plan,
    path_footprint,
    path_plan_cost,
    prune_path_plan,
    prune_tree_plan,
    tree_cost_footprint,
)
from repro.groups.tables import POLICIES, SwitchMulticastTables, TableStats

__all__ = [
    "ChurnEvent",
    "ChurnReport",
    "churn_stream",
    "run_paired_churn",
    "DEFAULT_QUALITY_BOUND",
    "DynamicGroup",
    "DynamicGroupManager",
    "GroupManager",
    "MulticastGroup",
    "PlanState",
    "RepairStats",
    "repair_kind",
    "graft_path_plan",
    "graft_tree_plan",
    "path_footprint",
    "path_plan_cost",
    "prune_path_plan",
    "prune_tree_plan",
    "tree_cost_footprint",
    "POLICIES",
    "SwitchMulticastTables",
    "TableStats",
]
