"""Bounded per-switch multicast forwarding tables.

The paper charges switch-based schemes (S11 tree worms, S12 multi-drop
paths) nothing for the forwarding state they imply; real switches hold a
*bounded* multicast table (P3FA models exactly this: unified forwarding
with limited per-switch state).  This module meters that state: every
switch a group's plan crosses needs one table entry for the group, the
table holds :attr:`capacity` entries, and a full table resolves the
conflict through a pluggable policy --

* ``lru`` -- evict the least-recently-used entry (its group must
  re-install on its next send, modelling a table-miss setup round-trip);
* ``lfu`` -- evict the least-frequently-used entry (ties broken by
  recency, then lowest group id, so eviction is deterministic);
* ``aggregate`` -- never evict: merge the incoming group into the
  coldest existing entry instead.  A merged ("coarse") entry serves
  several groups with one slot, the classic prefix-aggregation trade:
  no misses, but real hardware would overdeliver on the merged entry.

The ledger is purely observational -- it never changes simulated
deliveries -- so NI-based schemes simply skip it (their per-group state
lives in host memory, which is exactly the paper's NI-vs-switch
asymmetry this model sharpens).  All bookkeeping runs on a logical
clock (install/use counter), never wall time, and iterates sorted
collections, keeping every charge deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

POLICIES = ("lru", "lfu", "aggregate")


@dataclass
class TableStats:
    """What the capacity model observed across all switches."""

    installs: int = 0
    reinstalls: int = 0
    """Table misses: a group touched a switch its entry had been evicted
    from and had to re-install (the miss penalty counter)."""

    evictions: int = 0
    aggregations: int = 0
    releases: int = 0
    peak_occupancy: int = 0

    def as_dict(self) -> dict:
        return {
            "installs": self.installs,
            "reinstalls": self.reinstalls,
            "evictions": self.evictions,
            "aggregations": self.aggregations,
            "releases": self.releases,
            "peak_occupancy": self.peak_occupancy,
        }


@dataclass
class _Entry:
    """One table slot: the groups it serves plus recency/frequency."""

    groups: set[int]
    last_use: int
    uses: int = 1

    def key(self, policy: str) -> tuple:
        """Eviction/merge priority: smallest key goes first."""
        if policy == "lfu":
            return (self.uses, self.last_use, min(self.groups))
        return (self.last_use, self.uses, min(self.groups))


class SwitchMulticastTables:
    """Per-switch bounded multicast tables shared by every group on a net."""

    def __init__(self, num_switches: int, capacity: int,
                 policy: str = "lru") -> None:
        if capacity < 1:
            raise ValueError("table capacity must be >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICIES}")
        self.num_switches = num_switches
        self.capacity = capacity
        self.policy = policy
        self.stats = TableStats()
        self._entries: list[list[_Entry]] = [[] for _ in range(num_switches)]
        self._where: dict[int, set[int]] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def occupancy(self, switch: int) -> int:
        """Entries currently held at one switch."""
        return len(self._entries[switch])

    def holds(self, group_id: int, switch: int) -> bool:
        """Whether the switch currently has an entry serving the group."""
        return self._find(switch, group_id) is not None

    def coarse_entries(self) -> int:
        """Aggregated entries serving more than one group (overdelivery
        proxy under the ``aggregate`` policy)."""
        return sum(
            1 for slots in self._entries for e in slots if len(e.groups) > 1
        )

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def install(self, group_id: int, switches: tuple[int, ...]) -> None:
        """Charge a (re)planned footprint: one entry per crossed switch.

        Any previous footprint of the group is released first, so a plan
        change never leaks entries on switches the new plan avoids.
        """
        self.release(group_id)
        self._where[group_id] = set()
        for sw in sorted(set(switches)):
            self._place(sw, group_id)

    def touch(self, group_id: int, switches: tuple[int, ...]) -> None:
        """Charge one send over the footprint; re-install evicted entries."""
        for sw in sorted(set(switches)):
            entry = self._find(sw, group_id)
            if entry is None:
                self.stats.reinstalls += 1
                self._place(sw, group_id)
            else:
                self._clock += 1
                entry.last_use = self._clock
                entry.uses += 1

    def release(self, group_id: int) -> None:
        """Drop every entry the group holds (destroy / replan cleanup)."""
        held = self._where.pop(group_id, None)
        if not held:
            return
        for sw in sorted(held):
            entry = self._find(sw, group_id)
            if entry is None:
                continue
            entry.groups.discard(group_id)
            if not entry.groups:
                self._entries[sw].remove(entry)
                self.stats.releases += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, switch: int, group_id: int) -> _Entry | None:
        for entry in self._entries[switch]:
            if group_id in entry.groups:
                return entry
        return None

    def _place(self, switch: int, group_id: int) -> None:
        self._clock += 1
        slots = self._entries[switch]
        if len(slots) < self.capacity:
            slots.append(_Entry({group_id}, self._clock))
            self.stats.installs += 1
        elif self.policy == "aggregate":
            victim = min(slots, key=lambda e: e.key(self.policy))
            victim.groups.add(group_id)
            victim.last_use = self._clock
            victim.uses += 1
            self.stats.aggregations += 1
        else:
            victim = min(slots, key=lambda e: e.key(self.policy))
            slots.remove(victim)
            for gid in sorted(victim.groups):
                held = self._where.get(gid)
                if held is not None:
                    held.discard(switch)
            self.stats.evictions += 1
            slots.append(_Entry({group_id}, self._clock))
            self.stats.installs += 1
        self._where.setdefault(group_id, set()).add(switch)
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(slots))
