"""Seeded membership churn and the patched-vs-replanned paired harness.

:func:`churn_stream` draws a deterministic join/leave event stream over a
bounded population: ``churn_rate`` gates whether a step produces an event
(both the gate and the op draw are consumed every step, so streams at
different rates stay aligned on the shared prefix of decisions), and
join/leave weights shape the mix, clamped so membership never empties
and never exceeds the population.

:func:`run_paired_churn` is the experiment kernel: one network, one
churn stream, two groups -- a *patched* :class:`~repro.groups.membership.DynamicGroup`
that grafts/prunes, and a *twin* that replans on every change -- driven
through identical membership changes and alternating sends.  At every
step the harness asserts the patched group delivers exactly the same
destination set as the replan-every-change twin (the repair layer's
correctness contract), and records how often each side replanned plus
the patched-vs-fresh plan-cost ratio (the twin's plan *is* the fresh
plan, so the quality bound is measured, not estimated).  Optional fault
steps remove a link and reconfigure mid-stream, exercising the
epoch-invalidates-patches rule.

Everything here is a pure function of its seed: sub-seeds use the same
sha256 construction as the experiment runner's cell seeds, report
values are plain JSON-able data with no wall-clock anywhere, and
:meth:`ChurnReport.digest` gives CI a replayable fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.groups.membership import (
    DEFAULT_QUALITY_BOUND,
    DynamicGroup,
    DynamicGroupManager,
)
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology import faults
from repro.topology.irregular import generate_irregular_topology

MAX_EVENTS_PER_SEND = 500_000
"""Engine-event budget per send (matches the fuzz harness's runaway cap)."""


def derive_seed(base_seed: int, *key: object) -> int:
    """Deterministic sub-seed (sha256 over canonical JSON, never hash())."""
    payload = json.dumps([base_seed, list(key)], sort_keys=True,
                         separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << 62)


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: ``op`` is ``"join"`` or ``"leave"``."""

    step: int
    op: str
    node: int


def churn_stream(
    seed: int,
    steps: int,
    population: tuple[int, ...],
    root: int,
    initial_members: tuple[int, ...],
    churn_rate: float,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
) -> tuple[ChurnEvent, ...]:
    """A deterministic join/leave stream (at most one event per step).

    ``churn_rate`` is the per-step probability of an event; the gate and
    the join-vs-leave draw are consumed on every step regardless, so two
    rates of one seed agree event-for-event until the first step where
    only the higher rate fires.  Joins draw from
    the population outside the group, leaves from the members -- weights
    are zeroed when the respective pool is empty (a group never empties,
    the root never churns).
    """
    if not 0.0 <= churn_rate <= 1.0:
        raise ValueError("churn_rate must be in [0, 1]")
    rng = random.Random(derive_seed(seed, "churn-stream"))
    members = set(initial_members)
    events: list[ChurnEvent] = []
    for step in range(steps):
        gate = rng.random()
        op_draw = rng.random()
        if gate >= churn_rate:
            continue
        outside = sorted(set(population) - members - {root})
        jw = join_weight if outside else 0.0
        lw = leave_weight if len(members) > 1 else 0.0
        if jw + lw == 0.0:
            continue
        if op_draw < jw / (jw + lw):
            node = outside[rng.randrange(len(outside))]
            members.add(node)
            events.append(ChurnEvent(step, "join", node))
        else:
            pool = sorted(members)
            node = pool[rng.randrange(len(pool))]
            members.remove(node)
            events.append(ChurnEvent(step, "leave", node))
    return tuple(events)


@dataclass
class ChurnReport:
    """Outcome of one paired churn run (plain data, JSON-able)."""

    scheme: str
    steps: int
    events: int
    sends: int
    patched_stats: dict
    twin_replans: int
    delivery_identical: bool
    mismatches: list[str] = field(default_factory=list)
    verify_failures: int = 0
    epoch_bumps: int = 0
    max_cost_ratio: float = 0.0
    mean_cost_ratio: float = 0.0
    table_stats: dict | None = None

    def to_value(self) -> dict:
        """The experiment-cell value: deterministic, JSON-round-trippable."""
        out = {
            "scheme": self.scheme,
            "steps": self.steps,
            "events": self.events,
            "sends": self.sends,
            "patched": dict(self.patched_stats),
            "twin_replans": self.twin_replans,
            "delivery_identical": self.delivery_identical,
            "mismatches": list(self.mismatches),
            "verify_failures": self.verify_failures,
            "epoch_bumps": self.epoch_bumps,
            "max_cost_ratio": self.max_cost_ratio,
            "mean_cost_ratio": self.mean_cost_ratio,
        }
        if self.table_stats is not None:
            out["tables"] = dict(self.table_stats)
        return out

    def digest(self) -> str:
        """Replay fingerprint: sha256 over the canonical value JSON."""
        payload = json.dumps(self.to_value(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _drain(net: SimNetwork) -> None:
    net.engine.run(max_events=MAX_EVENTS_PER_SEND)


def _send_and_compare(
    patched: DynamicGroup,
    twin: DynamicGroup,
    net: SimNetwork,
    stage: str,
    report: ChurnReport,
    ratios: list[float],
) -> None:
    want = tuple(sorted(patched.members))
    rp = patched.send()
    _drain(net)
    rt = twin.send()
    _drain(net)
    report.sends += 2
    delivered_patched = tuple(sorted(rp.delivery_times))
    delivered_twin = tuple(sorted(rt.delivery_times))
    if not rp.complete or delivered_patched != want:
        report.delivery_identical = False
        report.mismatches.append(
            f"{stage}: patched delivered {list(delivered_patched)}, members {list(want)}"
        )
    if delivered_twin != delivered_patched:
        report.delivery_identical = False
        report.mismatches.append(
            f"{stage}: patched {list(delivered_patched)} != replanned {list(delivered_twin)}"
        )
    if patched.plan_cost is not None and twin.plan_cost:
        ratios.append(patched.plan_cost / twin.plan_cost)


def run_paired_churn(
    params: SimParams,
    scheme_name: str,
    *,
    seed: int,
    steps: int,
    group_size: int,
    churn_rate: float,
    join_weight: float = 1.0,
    leave_weight: float = 1.0,
    quality_bound: float = DEFAULT_QUALITY_BOUND,
    table_capacity: int | None = None,
    table_policy: str = "lru",
    fault_steps: tuple[int, ...] = (),
    send_every: int = 1,
    scheme_kw: dict | None = None,
) -> ChurnReport:
    """Drive a patched group and a replan-every-change twin through one
    seeded churn stream, asserting identical delivery sets step by step.

    ``fault_steps`` removes one removable link and reconfigures the
    network before those steps' events (the chaos-layer interaction);
    ``send_every`` thins the send cadence for long streams.  The twin
    shares the network but not the scheme instance, so the two plan
    caches never alias.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    scheme_kw = dict(scheme_kw or {})
    topo = generate_irregular_topology(
        params, seed=derive_seed(seed, "topology")
    )
    params = params.replace(
        num_switches=topo.num_switches, num_nodes=topo.num_nodes
    )
    net = SimNetwork(topo, params)
    root = 0
    pool = [n for n in range(params.num_nodes) if n != root]
    if group_size >= len(pool):
        raise ValueError("group_size must leave headroom for joins")
    member_rng = random.Random(derive_seed(seed, "members"))
    initial = tuple(sorted(member_rng.sample(pool, group_size)))
    events = churn_stream(
        seed, steps, tuple(pool), root, initial, churn_rate,
        join_weight=join_weight, leave_weight=leave_weight,
    )
    events_at: dict[int, list[ChurnEvent]] = {}
    for ev in events:
        events_at.setdefault(ev.step, []).append(ev)

    # Two managers: same spec must NOT share a scheme instance (a shared
    # plan cache would let one side serve the other's plans and void the
    # differential).
    patched_mgr = DynamicGroupManager(
        net, default_scheme=scheme_name,
        table_capacity=table_capacity, table_policy=table_policy,
    )
    twin_mgr = DynamicGroupManager(net, default_scheme=scheme_name)
    patched = patched_mgr.create(
        root, list(initial), quality_bound=quality_bound, repair=True,
        **scheme_kw,
    )
    twin = twin_mgr.create(
        root, list(initial), quality_bound=quality_bound, repair=False,
        **scheme_kw,
    )

    fault_set = set(fault_steps)
    fault_rng = random.Random(derive_seed(seed, "faults"))
    report = ChurnReport(
        scheme=scheme_name, steps=steps, events=len(events), sends=0,
        patched_stats={}, twin_replans=0, delivery_identical=True,
    )
    ratios: list[float] = []
    _send_and_compare(patched, twin, net, "initial", report, ratios)
    for step in range(steps):
        if step in fault_set:
            removable = faults.removable_links(net.topo)
            if removable:
                link_id = removable[fault_rng.randrange(len(removable))]
                net.reconfigure(faults.remove_link(net.topo, link_id))
                report.epoch_bumps += 1
        for ev in events_at.get(step, ()):
            if ev.op == "join":
                patched.join(ev.node)
                twin.join(ev.node)
            else:
                patched.leave(ev.node)
                twin.leave(ev.node)
            if step % send_every == 0:
                _send_and_compare(
                    patched, twin, net,
                    f"step {step} ({ev.op} {ev.node})", report, ratios,
                )
    report.patched_stats = patched.stats.as_dict()
    report.twin_replans = twin.stats.replans
    report.verify_failures = patched.stats.verify_failures
    if ratios:
        report.max_cost_ratio = max(ratios)
        report.mean_cost_ratio = sum(ratios) / len(ratios)
    if patched_mgr.tables is not None:
        report.table_stats = patched_mgr.tables.stats.as_dict()
    return report
