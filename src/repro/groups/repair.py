"""Incremental multicast-plan repair: graft on join, prune on leave.

A membership change invalidates at most a sliver of a plan; replanning
from scratch throws the rest away.  This module patches the two
switch-supported plan shapes in place --

* **path plans** (:class:`~repro.multicast.pathworm.MulticastPathPlan`):
  a join grafts the new member onto the nearest legal attachment point:
  if some worm already crosses the member's switch, the member becomes
  one more drop at that position (zero new links); otherwise a fresh
  single-destination worm is planned from the closest eligible sender
  (a covered node that has not sent yet, by routing distance then id)
  and appended as a new final phase.  A leave removes the member's drop,
  trims the now-useless path tail, and -- if the leaver was due to send
  a later worm -- hands that worm to another already-covered node on the
  same switch.
* **tree plans** (:class:`~repro.multicast.treeworm.TreeWormPlan`): a
  join keeps the plan whenever the turn switch still down-covers every
  destination not dropped on the climb; otherwise the up path is
  *extended* from the old turn to the nearest covering ancestor (a
  splice, not a replan).  A leave never invalidates coverage, so the
  plan survives as-is and the quality bound decides when an over-high
  turn is worth replanning away.

Every patch is advisory: callers re-verify the result against the
up*/down* invariants (:func:`repro.multicast.pathworm.verify_plan` /
:func:`repro.multicast.treeworm.verify_tree_plan`) and fall back to a
full replan when a function here returns ``None`` or verification
fails.  Cost helpers mirror the execution layer's link accounting so a
patched-vs-fresh quality ratio needs no simulation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.multicast.pathworm import (
    MulticastPathPlan,
    PathWormPlan,
    best_single_worm,
)
from repro.multicast.treeworm import TreeWormPlan, plan_tree_worm
from repro.sim.network import SimNetwork


# ----------------------------------------------------------------------
# Cost + footprint accounting
# ----------------------------------------------------------------------
def path_plan_cost(plan: MulticastPathPlan) -> int:
    """Static cost of a path plan: one injection plus the links per worm."""
    return sum(1 + len(w.links) for w in plan.worms)


def path_footprint(plan: MulticastPathPlan) -> tuple[int, ...]:
    """Sorted switches the plan's worms cross (the state the plan pins)."""
    return tuple(sorted({s for w in plan.worms for s in w.switch_path}))


def tree_cost_footprint(
    net: SimNetwork,
    down_dist: dict[int, dict[int, int]],
    plan: TreeWormPlan,
    dests: list[int],
) -> tuple[int, tuple[int, ...]]:
    """Static (cost, footprint) of a tree plan over a destination set.

    Replays the worm's route without simulating it: climb the up path
    (dropping destinations local to each crossed switch, stopping early
    if the header empties), then walk the priority-encoded down
    distribution exactly as :meth:`TreeWormScheme.make_steer` would
    assign header bits to down ports.  Cost is one injection plus every
    link the worm (and its down copies) traverses.
    """
    topo, rt = net.topo, net.routing
    remaining = frozenset(dests)
    switches: set[int] = set()
    edges = 0
    prev = None
    for s in plan.up_switch_path:
        if prev is not None:
            edges += 1
        switches.add(s)
        remaining = remaining - frozenset(topo.nodes_on_switch(s))
        prev = s
        if s == plan.turn_switch or not remaining:
            break
    # Down distribution happens only if header bits survive the climb.
    stack = [(plan.turn_switch, remaining)] if remaining else []
    while stack:
        sw, rem = stack.pop()
        switches.add(sw)
        rem = rem - frozenset(topo.nodes_on_switch(sw))
        assignment: dict[int, set[int]] = {}
        link_of: dict[int, object] = {}
        for d in sorted(rem):
            t = topo.switch_of_node(d)
            best = None
            for lk in rt.down_links_of(sw):
                v = lk.other_end(sw).switch
                dd = down_dist[v].get(t)
                if dd is None:
                    continue
                key = (dd, lk.link_id)
                if best is None or key < best[0]:
                    best = (key, lk)
            if best is None:
                raise ValueError(
                    f"switch {sw} cannot down-reach destination {d}")
            lk = best[1]
            assignment.setdefault(lk.link_id, set()).add(d)
            link_of[lk.link_id] = lk
        for link_id in sorted(assignment):
            lk = link_of[link_id]
            edges += 1
            stack.append(
                (lk.other_end(sw).switch, frozenset(assignment[link_id]))
            )
    return 1 + edges, tuple(sorted(switches))


# ----------------------------------------------------------------------
# Path-plan surgery
# ----------------------------------------------------------------------
def _swap_worm(
    plan: MulticastPathPlan, pi: int, wi: int, worm: PathWormPlan
) -> MulticastPathPlan:
    phase = plan.phases[pi][:wi] + (worm,) + plan.phases[pi][wi + 1:]
    return MulticastPathPlan(
        phases=plan.phases[:pi] + (phase,) + plan.phases[pi + 1:]
    )


def graft_path_plan(
    net: SimNetwork,
    plan: MulticastPathPlan,
    source: int,
    new_dest: int,
    strategy: str = "lg",
) -> MulticastPathPlan | None:
    """Attach one new destination to an existing path plan.

    Returns the patched plan, or ``None`` when no legal attachment point
    exists (caller replans).  Preference order: an existing worm already
    crossing the new member's switch (earliest phase first -- delivered
    soonest, zero added links), else a fresh single-destination worm
    from the nearest eligible sender appended as a new final phase.
    """
    topo, rt = net.topo, net.routing
    ns = topo.switch_of_node(new_dest)
    for pi, phase in enumerate(plan.phases):
        for wi, worm in enumerate(phase):
            for pos, sw in enumerate(worm.switch_path):
                if sw == ns:
                    drops = list(worm.drops)
                    drops[pos] = tuple(sorted((*drops[pos], new_dest)))
                    return _swap_worm(
                        plan, pi, wi, replace(worm, drops=tuple(drops))
                    )
    used = {w.sender for ph in plan.phases for w in ph}
    eligible = [source] if source not in used else []
    for phase in plan.phases:
        for worm in phase:
            eligible.extend(
                n for n in sorted(worm.covered) if n not in used
            )
    if not eligible:
        return None
    sender = min(
        eligible,
        key=lambda n: (rt.distance(topo.switch_of_node(n), ns), n),
    )
    worm = best_single_worm(
        net, sender, frozenset({new_dest}), strategy=strategy
    )
    return MulticastPathPlan(phases=plan.phases + ((worm,),))


def prune_path_plan(
    net: SimNetwork,
    plan: MulticastPathPlan,
    source: int,
    gone: int,
    strategy: str = "lg",
) -> MulticastPathPlan | None:
    """Detach one departed destination from a path plan.

    Removes the leaver's drop, trims the carrying worm's now-useless
    tail (worms that covered only the leaver disappear outright, as do
    phases they leave empty), and hands any worm the leaver was due to
    send to a replacement: preferably an idle earlier-covered node on the
    same switch (the worm survives verbatim), otherwise the orphaned
    worm's destinations are re-covered by fresh worms from the nearest
    idle earlier-covered senders, slotted into the same phase so the
    downstream sender-eligibility structure is untouched.  Returns
    ``None`` -- replan -- when the leaver is not in the plan or the
    replacement pool is exhausted.
    """
    phases = [list(ph) for ph in plan.phases]
    drop_loc: tuple[int, int] | None = None
    for pi, ph in enumerate(phases):
        for wi, w in enumerate(ph):
            if any(gone in nodes for nodes in w.drops):
                drop_loc = (pi, wi)
    if drop_loc is None:
        return None

    # Hand any worm the leaver was due to send to a replacement sender,
    # covered in a strictly earlier phase and idle.
    topo, rt = net.topo, net.routing
    used = {w.sender for ph in phases for w in ph}
    for pi, ph in enumerate(phases):
        for wi, w in enumerate(ph):
            if w.sender != gone:
                continue
            pool = {source}
            for q in range(pi):
                for w2 in phases[q]:
                    pool |= set(w2.covered)
            pool.discard(gone)
            idle = sorted(r for r in pool if r not in used)
            start = w.switch_path[0]
            same_switch = [
                r for r in idle if topo.switch_of_node(r) == start
            ]
            if same_switch:
                used.add(same_switch[0])
                phases[pi][wi] = replace(w, sender=same_switch[0])
                continue
            # No same-switch stand-in: re-cover the orphaned worm's drop
            # set with fresh worms from the nearest idle senders.  Same
            # phase slot, so every later phase's senders stay covered in
            # a strictly earlier phase.
            remaining = frozenset(n for n in w.covered if n != gone)
            new_worms: list[PathWormPlan] = []
            while remaining:
                if not idle:
                    return None
                sender = min(
                    idle,
                    key=lambda n: (
                        min(
                            rt.distance(
                                topo.switch_of_node(n),
                                topo.switch_of_node(d),
                            )
                            for d in remaining
                        ),
                        n,
                    ),
                )
                idle.remove(sender)
                used.add(sender)
                nw = best_single_worm(net, sender, remaining,
                                      strategy=strategy)
                new_worms.append(nw)
                remaining = remaining - nw.covered
            phases[pi][wi:wi + 1] = new_worms
            if drop_loc[0] == pi:
                # Worm indices in this phase shifted; gone's drop is never
                # on a worm gone sends, so only re-locate it.
                for wj, w2 in enumerate(phases[pi]):
                    if any(gone in nodes for nodes in w2.drops):
                        drop_loc = (pi, wj)

    pi, wi = drop_loc
    w = phases[pi][wi]
    drops = [tuple(n for n in nodes if n != gone) for nodes in w.drops]
    last = -1
    for i, nodes in enumerate(drops):
        if nodes:
            last = i
    if last < 0:
        del phases[pi][wi]
    else:
        phases[pi][wi] = replace(
            w,
            switch_path=w.switch_path[:last + 1],
            links=w.links[:last],
            drops=tuple(drops[:last + 1]),
        )
    new_phases = tuple(tuple(ph) for ph in phases if ph)
    if not new_phases:
        return None
    return MulticastPathPlan(phases=new_phases)


# ----------------------------------------------------------------------
# Tree-plan surgery
# ----------------------------------------------------------------------
def graft_tree_plan(
    net: SimNetwork,
    plan: TreeWormPlan,
    dests_after: tuple[int, ...],
) -> TreeWormPlan:
    """Graft new membership onto a tree plan, extending the climb if needed.

    If the turn switch still down-covers every destination not dropped on
    the way up, the plan is untouched.  Otherwise the up path is extended
    from the old turn to the nearest ancestor that covers the shortfall
    (a BFS over up links, exactly how the original turn was chosen) and
    spliced on -- the up-direction graph is acyclic, so the extension
    never revisits the existing path.
    """
    topo = net.topo
    remaining = frozenset(dests_after)
    for s in plan.up_switch_path:
        remaining = remaining - frozenset(topo.nodes_on_switch(s))
    if net.reach.covers(plan.turn_switch, remaining):
        return plan
    ext = plan_tree_worm(net, plan.turn_switch, sorted(remaining))
    return TreeWormPlan(
        source_switch=plan.source_switch,
        turn_switch=ext.turn_switch,
        up_switch_path=plan.up_switch_path + ext.up_switch_path[1:],
    )


def prune_tree_plan(plan: TreeWormPlan) -> TreeWormPlan:
    """A leave never breaks tree coverage: the plan survives unchanged.

    (The quality bound, not legality, decides when a shrunken group has
    left the turn switch too high to keep.)
    """
    return plan
