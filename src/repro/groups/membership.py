"""Group membership with incremental plan repair under churn.

Grown out of ``repro.collectives.groups``: the static
:class:`MulticastGroup` / :class:`GroupManager` lifecycle lives here
(with its invalidation narrowed from cache-wide wipes to keyed discards
of exactly the group's own plans), and :class:`DynamicGroup` adds the
churn story --

* **joins graft, leaves prune.**  Switch-supported plans (tree worms,
  multi-drop paths) are patched in place via :mod:`repro.groups.repair`;
  a full replan happens only when the patch would break up*/down*
  legality (checked with the schemes' own static verifiers on every
  patch) or exceed the quality bound: a patched plan whose per-member
  cost drifts past ``quality_bound`` times the per-member cost at the
  last full replan is thrown away and replanned fresh.
* **NI-based schemes patch for free.**  Binomial/k-binomial state is a
  host-memory member list; joins and leaves are O(1) updates with no
  switch state to repair -- the NI side of the paper's question.
* **reconfigurations invalidate patches, not groups.**  Every repaired
  plan is stamped with the :attr:`~repro.sim.network.SimNetwork.routing_epoch`
  it was built under.  A chaos-layer reconfiguration bumps the epoch;
  the next membership change or send notices the stale stamp and
  replans on the new orientation -- membership itself survives.
* **switch table charging.**  When a :class:`SwitchMulticastTables`
  ledger is attached, every (re)planned footprint installs entries and
  every send touches them, so bounded-capacity effects (evictions,
  reinstall misses, aggregation coarseness) accrue to the switch-based
  schemes only.

Accepted patches are *installed* into the scheme's plan cache under the
group's own key, so :meth:`MulticastGroup.send` runs the ordinary
execute path and simply finds the repaired plan where a freshly
computed one would sit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.groups.repair import (
    graft_path_plan,
    graft_tree_plan,
    path_footprint,
    path_plan_cost,
    prune_path_plan,
    prune_tree_plan,
    tree_cost_footprint,
)
from repro.groups.tables import SwitchMulticastTables
from repro.multicast import make_scheme
from repro.multicast.base import MulticastResult, MulticastScheme
from repro.multicast.pathworm import PathWormScheme, verify_plan
from repro.multicast.treeworm import (
    TreeWormScheme,
    _down_distance_table,
    plan_tree_worm,
    verify_tree_plan,
)
from repro.sim.network import SimNetwork

DEFAULT_QUALITY_BOUND = 1.5
"""Replan when a patched plan's per-member cost exceeds this multiple of
the per-member cost measured at the last full replan."""


def repair_kind(scheme: MulticastScheme) -> str:
    """How a scheme's plans can be repaired under membership churn.

    ``"path"`` / ``"tree"`` -- switch-supported plans patched via
    :mod:`repro.groups.repair`; ``"stateless"`` -- NI-based schemes whose
    per-group state is a host-side member list (patches are trivial and
    free); ``"replan"`` -- plans this layer cannot patch (e.g. the
    header-capped tree variant, whose chunking reshuffles wholesale on
    any membership change) and therefore recomputes every time.
    """
    if isinstance(scheme, PathWormScheme):
        return "path"
    if isinstance(scheme, TreeWormScheme):
        return "tree" if scheme.max_header_dests is None else "replan"
    return "stateless"


class MulticastGroup:
    """One registered group: a root, members, and cached plans."""

    def __init__(
        self,
        net: SimNetwork,
        group_id: int,
        root: int,
        members: list[int],
        scheme: MulticastScheme,
    ) -> None:
        self.net = net
        self.group_id = group_id
        self.root = root
        self.scheme = scheme
        self._members: set[int] = set()
        for m in members:
            self._validate_node(m)
            self._members.add(m)
        self._validate_node(root)
        if root in self._members:
            raise ValueError("root is implicitly a member; do not list it")
        if not self._members:
            raise ValueError("group needs at least one non-root member")
        # Cached sorted view: send() is O(1) in membership, not O(n log n);
        # refreshed only when membership actually changes.
        self._sorted_members: tuple[int, ...] = tuple(sorted(self._members))
        self.sends = 0

    def _validate_node(self, node: int) -> None:
        if not 0 <= node < self.net.topo.num_nodes:
            raise ValueError(f"node {node} out of range")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[int]:
        """Current non-root members."""
        return frozenset(self._members)

    def join(self, node: int) -> None:
        """Add a member; invalidates cached plans."""
        self._validate_node(node)
        if node == self.root:
            raise ValueError("root is already in the group")
        if node in self._members:
            raise ValueError(f"node {node} already a member")
        self._members.add(node)
        self._membership_changed(added=node, removed=None)

    def leave(self, node: int) -> None:
        """Remove a member; invalidates cached plans.

        Validation happens *before* mutation: a rejected leave (unknown
        node, or the last remaining member) leaves membership untouched.
        """
        if node not in self._members:
            raise ValueError(f"node {node} not a member")
        if len(self._members) == 1:
            raise ValueError("cannot remove the last member")
        self._members.remove(node)
        self._membership_changed(added=None, removed=node)

    def _membership_changed(
        self, added: int | None, removed: int | None
    ) -> None:
        previous = self._sorted_members
        self._sorted_members = tuple(sorted(self._members))
        self._invalidate(previous)

    def _invalidate(self, previous: tuple[int, ...]) -> None:
        # Keyed discard of exactly this group's cached plans (across every
        # epoch): other groups sharing the scheme instance keep theirs, and
        # shared network-wide tables (down-distance) survive untouched.
        self.scheme.discard_group_plans(self.net, self.root, previous)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(
        self,
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        """Multicast one message from the root to the current members."""
        self.sends += 1
        return self.scheme.execute(
            self.net, self.root, list(self._sorted_members), on_complete
        )


class GroupManager:
    """Registry of multicast groups on one network.

    Groups requesting the same ``(scheme name, keyword)`` spec share one
    scheme instance -- and therefore one plan cache -- which is what makes
    keyed invalidation matter: one group's churn discards only its own
    entries, and its neighbours' cached plans survive.
    """

    _group_cls: type[MulticastGroup] = MulticastGroup

    def __init__(self, net: SimNetwork, default_scheme: str = "tree") -> None:
        self.net = net
        self.default_scheme = default_scheme
        self._groups: dict[int, MulticastGroup] = {}
        self._schemes: dict[tuple, MulticastScheme] = {}
        self._next_id = 0

    def _scheme_for(self, name: str, scheme_kw: dict) -> MulticastScheme:
        key = (name, tuple(sorted(scheme_kw.items())))
        scheme = self._schemes.get(key)
        if scheme is None:
            scheme = make_scheme(name, **scheme_kw)
            scheme.enable_plan_cache()
            self._schemes[key] = scheme
        return scheme

    def create(
        self,
        root: int,
        members: list[int],
        scheme_name: str | None = None,
        **scheme_kw,
    ) -> MulticastGroup:
        """Register a group; returns the handle (ids are never reused)."""
        scheme = self._scheme_for(
            scheme_name or self.default_scheme, scheme_kw
        )
        group = self._group_cls(
            self.net, self._next_id, root, members, scheme
        )
        self._groups[self._next_id] = group
        self._next_id += 1
        return group

    def get(self, group_id: int) -> MulticastGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            raise ValueError(f"no group {group_id}")

    def destroy(self, group_id: int) -> None:
        """Unregister a group, discarding its cached plans."""
        if group_id not in self._groups:
            raise ValueError(f"no group {group_id}")
        group = self._groups.pop(group_id)
        group.scheme.discard_group_plans(
            self.net, group.root, group._sorted_members
        )

    def __len__(self) -> int:
        return len(self._groups)


# ----------------------------------------------------------------------
# Dynamic groups: churn-time plan repair
# ----------------------------------------------------------------------
@dataclass
class RepairStats:
    """What a dynamic group did in response to membership churn."""

    grafts: int = 0
    prunes: int = 0
    replans: int = 0
    """Membership changes that fell back to a full replan (the number the
    20%-of-churn acceptance bound constrains; sub-classified below)."""

    legality_replans: int = 0
    quality_replans: int = 0
    epoch_replans: int = 0
    """Replans forced because a reconfiguration invalidated the patched
    plan's routing epoch before the membership change landed."""

    send_refreshes: int = 0
    """Replans at send time after an epoch bump (no membership change)."""

    verify_failures: int = 0
    """Patches the static verifiers rejected (each also counts one
    legality replan; nonzero means a repair function produced an illegal
    plan -- worth investigating, never worth delivering)."""

    @property
    def membership_changes(self) -> int:
        return self.grafts + self.prunes + self.replans

    @property
    def replan_fraction(self) -> float:
        changes = self.membership_changes
        return self.replans / changes if changes else 0.0

    def as_dict(self) -> dict:
        return {
            "grafts": self.grafts,
            "prunes": self.prunes,
            "replans": self.replans,
            "legality_replans": self.legality_replans,
            "quality_replans": self.quality_replans,
            "epoch_replans": self.epoch_replans,
            "send_refreshes": self.send_refreshes,
            "verify_failures": self.verify_failures,
            "replan_fraction": self.replan_fraction,
        }


@dataclass
class PlanState:
    """The live plan of a dynamic group, stamped with its routing epoch."""

    plan: object
    epoch: int
    cost: int
    footprint: tuple[int, ...]
    baseline_cost: int
    baseline_size: int
    """(cost, member count) at the last full replan: the quality bound
    compares patched per-member cost against this baseline, so accepting
    a patch needs no fresh plan to compare against."""

    problems: tuple[str, ...] = field(default=())
    """Verifier output for the *current* plan (always empty for accepted
    plans; kept for observability in tests)."""


class DynamicGroup(MulticastGroup):
    """A multicast group whose plan is repaired, not replanned, on churn."""

    def __init__(
        self,
        net: SimNetwork,
        group_id: int,
        root: int,
        members: list[int],
        scheme: MulticastScheme,
        *,
        quality_bound: float = DEFAULT_QUALITY_BOUND,
        repair: bool = True,
        tables: SwitchMulticastTables | None = None,
    ) -> None:
        if quality_bound < 1.0:
            raise ValueError("quality_bound must be >= 1.0")
        self.quality_bound = float(quality_bound)
        self.repair_enabled = repair
        self.stats = RepairStats()
        self._kind = repair_kind(scheme)
        self.tables = tables if self._kind in ("path", "tree") else None
        self._state: PlanState | None = None
        super().__init__(net, group_id, root, members, scheme)
        if self._kind in ("path", "tree"):
            self._replan(count=False)

    # ------------------------------------------------------------------
    # Churn handling
    # ------------------------------------------------------------------
    def _membership_changed(
        self, added: int | None, removed: int | None
    ) -> None:
        previous = self._sorted_members
        self._sorted_members = tuple(sorted(self._members))
        self._invalidate(previous)
        if self._kind == "stateless":
            # NI-side state is a host-memory member list; the "patch" is
            # the membership update that already happened.
            if added is not None:
                self.stats.grafts += 1
            else:
                self.stats.prunes += 1
            return
        if self._kind == "replan" or not self.repair_enabled:
            self._replan()
            return
        if self._state is None:
            self._replan()
            return
        if self._state.epoch != self.net.routing_epoch:
            # A reconfiguration invalidated the patched plan -- not the
            # group: replan once on the new orientation and carry on.
            self.stats.epoch_replans += 1
            self._replan()
            return
        patched = self._patch(added, removed)
        if patched is None:
            self.stats.legality_replans += 1
            self._replan()
            return
        problems = self._verify(patched)
        if problems:
            self.stats.verify_failures += 1
            self.stats.legality_replans += 1
            self._replan()
            return
        cost, footprint = self._measure(patched)
        base = self._state
        if (
            base.baseline_cost > 0
            and cost * base.baseline_size
            > self.quality_bound * base.baseline_cost
            * len(self._sorted_members)
        ):
            self.stats.quality_replans += 1
            self._replan()
            return
        self._state = PlanState(
            plan=patched,
            epoch=self.net.routing_epoch,
            cost=cost,
            footprint=footprint,
            baseline_cost=base.baseline_cost,
            baseline_size=base.baseline_size,
        )
        self._install(patched)
        self._charge_tables()
        if added is not None:
            self.stats.grafts += 1
        else:
            self.stats.prunes += 1

    def _patch(self, added: int | None, removed: int | None):
        assert self._state is not None
        if self._kind == "path":
            if added is not None:
                return graft_path_plan(
                    self.net, self._state.plan, self.root, added,
                    strategy=self.scheme.strategy,
                )
            return prune_path_plan(
                self.net, self._state.plan, self.root, removed,
                strategy=self.scheme.strategy,
            )
        if added is not None:
            return graft_tree_plan(
                self.net, self._state.plan, self._sorted_members
            )
        return prune_tree_plan(self._state.plan)

    def _verify(self, plan) -> list[str]:
        if self._kind == "path":
            return verify_plan(
                self.net.topo, self.net.routing, self.root,
                list(self._sorted_members), plan,
            )
        return verify_tree_plan(self.net, plan, list(self._sorted_members))

    def _measure(self, plan) -> tuple[int, tuple[int, ...]]:
        if self._kind == "path":
            return path_plan_cost(plan), path_footprint(plan)
        return tree_cost_footprint(
            self.net, self._down_dist(), plan, list(self._sorted_members)
        )

    def _down_dist(self) -> dict[int, dict[int, int]]:
        # Shared with the execute path: same cache key, same table.
        return self.scheme._cached_plan(
            self.net, ("downdist",), lambda: _down_distance_table(self.net)
        )

    def _replan(self, count: bool = True) -> None:
        if count:
            self.stats.replans += 1
        if self._kind not in ("path", "tree"):
            self._state = None
            return
        dests = list(self._sorted_members)
        if self._kind == "path":
            plan = self.scheme.plan(self.net, self.root, dests)
        else:
            plan = plan_tree_worm(
                self.net, self.net.topo.switch_of_node(self.root), dests
            )
        cost, footprint = self._measure(plan)
        self._state = PlanState(
            plan=plan,
            epoch=self.net.routing_epoch,
            cost=cost,
            footprint=footprint,
            baseline_cost=cost,
            baseline_size=len(dests),
        )
        self._install(plan)
        self._charge_tables()

    def _install(self, plan) -> None:
        """Plant the plan in the scheme cache where execute() will look."""
        dests = self._sorted_members
        if self._kind == "path":
            self.scheme.install_plan(
                self.net, ("mdp", self.root, dests), plan
            )
            return
        steer = self.scheme.make_steer(
            self.net, plan, list(dests), self._down_dist()
        )
        self.scheme.install_plan(
            self.net, ("chunks", self.root, dests), [list(dests)]
        )
        self.scheme.install_plan(
            self.net, ("worm", self.root, dests), (plan, steer)
        )

    def _charge_tables(self) -> None:
        if self.tables is not None and self._state is not None:
            self.tables.install(self.group_id, self._state.footprint)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(
        self,
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        if (
            self._state is not None
            and self._state.epoch != self.net.routing_epoch
        ):
            # Reconfigured since the plan was built: refresh it (the
            # epoch-keyed scheme cache would miss anyway; this keeps the
            # group's cost/footprint ledger in step with what runs).
            self.stats.send_refreshes += 1
            self._replan(count=False)
        if self.tables is not None and self._state is not None:
            self.tables.touch(self.group_id, self._state.footprint)
        return super().send(on_complete)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def plan_cost(self) -> int | None:
        """Static cost of the live plan (None for NI-based schemes)."""
        return self._state.cost if self._state is not None else None

    @property
    def plan_footprint(self) -> tuple[int, ...] | None:
        return self._state.footprint if self._state is not None else None

    @property
    def plan_epoch(self) -> int | None:
        return self._state.epoch if self._state is not None else None


class DynamicGroupManager(GroupManager):
    """Group registry with churn repair and optional table capacity.

    ``table_capacity``/``table_policy`` attach one shared
    :class:`SwitchMulticastTables` ledger; switch-supported groups charge
    it, NI-based groups never touch it.
    """

    _group_cls = DynamicGroup

    def __init__(
        self,
        net: SimNetwork,
        default_scheme: str = "tree",
        *,
        table_capacity: int | None = None,
        table_policy: str = "lru",
    ) -> None:
        super().__init__(net, default_scheme=default_scheme)
        self.tables: SwitchMulticastTables | None = None
        if table_capacity is not None:
            self.tables = SwitchMulticastTables(
                net.topo.num_switches, table_capacity, policy=table_policy
            )

    def create(
        self,
        root: int,
        members: list[int],
        scheme_name: str | None = None,
        *,
        quality_bound: float = DEFAULT_QUALITY_BOUND,
        repair: bool = True,
        **scheme_kw,
    ) -> DynamicGroup:
        scheme = self._scheme_for(
            scheme_name or self.default_scheme, scheme_kw
        )
        group = DynamicGroup(
            self.net, self._next_id, root, members, scheme,
            quality_bound=quality_bound,
            repair=repair,
            tables=self.tables,
        )
        self._groups[self._next_id] = group
        self._next_id += 1
        return group

    def destroy(self, group_id: int) -> None:
        group = self.get(group_id)
        if isinstance(group, DynamicGroup) and group.tables is not None:
            group.tables.release(group_id)
        super().destroy(group_id)
