"""Streaming quantile digest for tail-latency reporting.

The collective-workload engine (:mod:`repro.workloads`) streams one
completion latency per finished operation and must report p50/p99/p999 at
the end of the run.  At the quick-profile scales this repository simulates
(thousands of operations per cell, not billions), the right digest is the
*exact* one: keep every sample in sorted order and interpolate, so the
reported tails are true order statistics rather than sketch approximations.
The class is written against a streaming interface (``add``/``merge``/
``quantile``) so a fixed-memory sketch could replace the sorted list later
without touching any caller.

Quantile semantics match :func:`repro.metrics.stats.percentile` exactly
(linear interpolation between the two straddling order statistics --
``statistics.quantiles(..., method="inclusive")`` convention), so the
property suite can cross-check the digest against the stdlib.
"""

from __future__ import annotations

import bisect
import math


class QuantileDigest:
    """Exact streaming quantile digest over a float sample.

    Samples arrive one at a time through :meth:`add` and are kept in a
    sorted list (``O(n)`` inserts via ``bisect.insort``; fine for the
    per-cell sample sizes the workload engine produces).  Quantiles are
    linear-interpolation order statistics, identical to
    :func:`repro.metrics.stats.percentile`.
    """

    __slots__ = ("_sorted", "_sum")

    def __init__(self, values: list[float] | None = None) -> None:
        self._sorted: list[float] = sorted(values) if values else []
        self._sum: float = sum(self._sorted)

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one sample (must be finite; NaN would corrupt the order)."""
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample {value!r}")
        bisect.insort(self._sorted, value)
        self._sum += value

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another digest's samples into this one."""
        merged: list[float] = []
        a, b = self._sorted, other._sorted
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] <= b[j]:
                merged.append(a[i])
                i += 1
            else:
                merged.append(b[j])
                j += 1
        merged.extend(a[i:])
        merged.extend(b[j:])
        self._sorted = merged
        self._sum += other._sum

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        if not self._sorted:
            raise ValueError("mean of empty digest")
        return self._sum / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, ``q`` in [0, 1]."""
        s = self._sorted
        if not s:
            raise ValueError("quantile of empty digest")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if len(s) == 1:
            return s[0]
        pos = (len(s) - 1) * q
        lo = math.floor(pos)
        hi = math.ceil(pos)
        frac = pos - lo
        value = s[lo] * (1 - frac) + s[hi] * frac
        # Same ulp-clamp as stats.percentile: interpolation must never
        # escape the straddling order statistics.
        return min(max(value, s[lo]), s[hi])

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def summary(self) -> dict[str, float | int | None]:
        """JSON-ready tail summary (None fields when the digest is empty)."""
        if not self._sorted:
            return {"count": 0, "mean": None, "p50": None, "p99": None,
                    "p999": None, "max": None}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": self._sorted[-1],
        }
