"""Latency decomposition: where do a multicast's cycles go?

Splits a scheme's latency into three additive components by differential
simulation:

* **wire** -- the latency with all software overheads zeroed
  (``o_host = 0``, ``R`` huge): pure injection/propagation/streaming time;
* **software** -- isolated-run latency minus wire: the host/NI overhead
  share (the paper's central quantity: "latency ... is still dominated by
  the communication software overhead");
* **contention** -- a loaded measurement minus the isolated latency.

The split quantifies per scheme *why* it wins or loses: the tree scheme
buys its factor by shrinking the software share to a single send+receive
pair; FPFS attacks the same share at interior nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SimParams
from repro.topology.graph import NetworkTopology
from repro.traffic.single import measure_single_multicast


@dataclass(frozen=True)
class LatencyBreakdown:
    """Additive latency components of one multicast configuration."""

    scheme: str
    wire: float
    software: float
    isolated_total: float
    contention: float | None
    """None when no loaded measurement was supplied."""

    @property
    def software_fraction(self) -> float:
        """Share of the isolated latency spent in software overheads."""
        return self.software / self.isolated_total if self.isolated_total else 0.0

    def __str__(self) -> str:
        parts = (
            f"{self.scheme}: wire={self.wire:.0f} software={self.software:.0f} "
            f"({self.software_fraction:.0%})"
        )
        if self.contention is not None:
            parts += f" contention={self.contention:.0f}"
        return parts


def decompose_multicast(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    source: int,
    dests: list[int],
    measured_latency: float | None = None,
    **scheme_kw,
) -> LatencyBreakdown:
    """Differential decomposition of one multicast's latency.

    Args:
        measured_latency: optionally, a latency observed under load for the
            same (scheme, source, dests); its excess over the isolated run
            is reported as contention.
    """
    isolated = measure_single_multicast(
        topo, params, scheme_name, source, dests, **scheme_kw
    ).latency
    # Zero software: o_host = 0 and o_ni floored at 1 cycle (its minimum).
    wire_params = params.replace(o_host=0, ratio_r=1.0)
    wire = measure_single_multicast(
        topo, wire_params, scheme_name, source, dests, **scheme_kw
    ).latency
    software = max(0.0, isolated - wire)
    contention = (
        None if measured_latency is None else max(0.0, measured_latency - isolated)
    )
    return LatencyBreakdown(
        scheme=scheme_name,
        wire=wire,
        software=software,
        isolated_total=isolated,
        contention=contention,
    )
