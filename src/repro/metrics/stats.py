"""Small statistics helpers for experiment results.

Deliberately dependency-light (plain Python, no numpy requirement) so the
hot simulation paths never pay for array conversions of tiny samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def mean(xs: list[float]) -> float:
    """Arithmetic mean; raises on empty input (silent NaN hides bugs)."""
    if not xs:
        raise ValueError("mean of empty sample")
    return sum(xs) / len(xs)


def percentile(xs: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not xs:
        raise ValueError("percentile of empty sample")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    s = sorted(xs)
    if len(s) == 1:
        return s[0]
    pos = (len(s) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    value = s[lo] * (1 - frac) + s[hi] * frac
    # Interpolation arithmetic can escape [s[lo], s[hi]] by a few ulps for
    # large magnitudes; clamp so the result is always a valid percentile.
    return min(max(value, s[lo]), s[hi])


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    min: float
    max: float

    @property
    def sem(self) -> float:
        """Standard error of the mean (0 for singleton samples)."""
        if self.count < 2:
            return 0.0
        # population std recorded; use the n-1 correction for the SEM
        return self.std * math.sqrt(self.count / (self.count - 1)) / math.sqrt(
            self.count
        )

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of a normal-approximation 95% confidence interval.

        The experiment harness averages over independent topology/draw
        samples; with the profile sizes used (>= 4 samples) the normal
        approximation is the conventional reporting choice.
        """
        return 1.96 * self.sem

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f}+-{self.ci95_halfwidth:.1f} "
            f"p50={self.p50:.1f} p95={self.p95:.1f} max={self.max:.1f}"
        )


def summarize(xs: list[float]) -> LatencySummary:
    """Summarise a non-empty latency sample."""
    m = mean(xs)
    var = sum((x - m) ** 2 for x in xs) / len(xs)
    return LatencySummary(
        count=len(xs),
        mean=m,
        std=math.sqrt(var),
        p50=percentile(xs, 50),
        p95=percentile(xs, 95),
        min=min(xs),
        max=max(xs),
    )
