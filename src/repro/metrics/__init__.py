"""Latency statistics and summaries (system S14)."""

from repro.metrics.quantiles import QuantileDigest
from repro.metrics.stats import LatencySummary, mean, percentile, summarize

__all__ = [
    "LatencySummary", "QuantileDigest", "mean", "percentile", "summarize",
]
