"""Latency statistics and summaries (system S14)."""

from repro.metrics.stats import LatencySummary, mean, percentile, summarize

__all__ = ["LatencySummary", "mean", "percentile", "summarize"]
