"""Whole-program static analysis: determinism sanitizer + partition safety.

Where :mod:`repro.lint` checks one file (or one loaded topology) at a time,
this package sees the *whole* ``repro`` package at once:

* :mod:`~repro.analyze.project` builds a project-wide symbol table and call
  graph;
* :mod:`~repro.analyze.effects` infers, per function, which ``self.*``
  attributes, class variables, and module-level objects it mutates,
  propagated transitively through the call graph;
* :mod:`~repro.analyze.taint` tracks unordered-iteration and
  object-identity taint from sources (``set`` iteration, ``id()``,
  ``os.environ``) to event-scheduling / trace / seed-derivation sinks;
* :mod:`~repro.analyze.partition` classifies every simulation module as
  shareable-immutable, partition-local, or cross-partition-mutating -- the
  machine-readable contract (``analyze-manifest.json``) the sharded
  Chandy--Misra runner will consume;
* :mod:`~repro.analyze.epochs` statically replays chaos fault schedules
  (degrade -> rebuild up*/down* -> multicast CDG) and proves acyclicity and
  reachability at *every* routing epoch, not just epoch 0.

Entry points: ``python -m repro.analyze`` / ``repro-analyze`` (see
:mod:`~repro.analyze.cli`), plus registration of the code rules into the
:mod:`repro.lint` registry (:mod:`~repro.analyze.rules`) so one lint
invocation runs both passes.
"""

from repro.analyze.engine import AnalysisResult, run_analysis

__all__ = ["AnalysisResult", "run_analysis"]
