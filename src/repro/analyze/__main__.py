"""``python -m repro.analyze`` entry point."""

from repro.analyze.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
