"""Partition-safety certifier for the sharded simulation.

The sharded runner (``repro.shard``, docs/sharding.md) shards a
512--1024-switch network across worker partitions, each running its own
:class:`SimNetwork` + :class:`Engine` pair under a Chandy--Misra-style
conservative protocol.  That only works if the code a
worker executes cannot reach *shared* mutable state: module-level
containers, class variables, or another partition's ``SimNetwork``.

This module classifies every simulation module (``SIM_SCOPES``) into one of
three partition-safety classes and certifies the classification as findings
plus a machine-readable manifest (``analyze-manifest.json``):

``shareable-immutable``
    No module-level mutable objects and no instance-mutating public API
    outside construction.  Instances (and the module itself) can be shared
    read-only across partitions -- topologies, routing tables, params.

``partition-local``
    Holds mutable state, but only *instance* state (or module registries
    frozen after import).  Each partition must own its own instances;
    sharing one across partitions is a race.

``cross-partition-mutating``
    A function reachable from a runner cell writes a module-level mutable
    object at runtime, or writes another component's ``SimNetwork``/
    ``Engine`` state from outside the sim layer.  This is the class the
    certifier *fails* on: such code cannot be sharded without a lock or a
    refactor, so each occurrence must be fixed or carry a justified
    suppression.

Runner-cell reachability starts from the experiment entry points
(:func:`repro.experiments.runner.run_cell` and the traffic measurement
functions it dispatches to) and follows the resolved call graph.  Writes
through the sanctioned coordination API -- the ``ExecutionContext``
contextvar in ``experiments/runner.py`` -- are exempt: that is the one
blessed cross-cell channel, and the sharded runner will own its migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.effects import (
    EffectsReport,
    runtime_mutating_methods,
)
from repro.analyze.project import ProjectIndex

ROOT_SUFFIXES = (
    "experiments.runner:run_cell",
    "traffic.single:average_single_multicast_latency",
    "traffic.load:run_load_experiment",
    "traffic.load:sweep_load",
    "traffic.background:multicast_under_background",
)
"""Call-graph roots that define "runner-cell-reachable".  Matched by
suffix so planted-violation fixture trees (whose modules are rooted at a
tmp dir, not at ``repro``) resolve the same way."""

ALLOWED_GLOBAL_WRITES = (
    "experiments.runner:_CONTEXT",
)
"""Sanctioned module-level writes: the ExecutionContext contextvar is the
one blessed cross-cell coordination channel."""

SIM_STATE_CLASSES = ("SimNetwork", "Engine")
"""Classes whose instances belong to exactly one partition."""

OBSERVER_SLOTS = {"trace", "worm_log"}
"""SimNetwork attributes documented as caller-assignable observer hooks
(a TraceLog / worm log is attached by the harness that owns the net)."""


def find_roots(index: ProjectIndex) -> list[str]:
    """The runner-cell entry points present in this index."""
    return sorted(
        qual for qual in index.functions
        if any(qual.endswith(suffix) for suffix in ROOT_SUFFIXES)
    )


def _write_allowed(target: str) -> bool:
    return any(target.endswith(sfx) for sfx in ALLOWED_GLOBAL_WRITES)


@dataclass(frozen=True)
class PartitionViolation:
    """One partition-unsafe write by a runner-reachable function."""

    kind: str
    """``runtime-global-mutation`` or ``cross-network-mutation``."""

    function: str
    target: str
    path: str
    line: int
    root: str
    """The runner entry point the function is reachable from."""

    def message(self) -> str:
        if self.kind == "runtime-global-mutation":
            return (
                f"{self.function.split(':')[-1]}() is reachable from "
                f"{self.root.split(':')[-1]}() and mutates module-level "
                f"state {self.target}; shard workers would race on it -- "
                "move it onto an instance owned by the partition or route "
                "it through ExecutionContext"
            )
        return (
            f"{self.function.split(':')[-1]}() mutates {self.target} on a "
            "parameter from outside the sim layer; only the partition that "
            "owns a SimNetwork/Engine may write it"
        )


@dataclass
class ModuleClassification:
    """Partition-safety classification of one module."""

    module: str
    classification: str
    mutable_globals: list[str] = field(default_factory=list)
    runtime_mutating_classes: dict[str, list[str]] = field(
        default_factory=dict)
    """Class name -> public mutating entry points."""

    reachable_global_writers: list[str] = field(default_factory=list)
    """Functions (anywhere) reachable from a runner cell that write this
    module's globals -- what forces ``cross-partition-mutating``."""

    def to_json(self) -> dict:
        return {
            "classification": self.classification,
            "mutable_globals": sorted(self.mutable_globals),
            "runtime_mutating_classes": {
                cls: sorted(methods)
                for cls, methods in sorted(
                    self.runtime_mutating_classes.items())
            },
            "reachable_global_writers": sorted(
                self.reachable_global_writers),
        }


@dataclass
class PartitionReport:
    """Violations + per-module classification."""

    roots: list[str]
    reachable: dict[str, str]
    violations: list[PartitionViolation]
    modules: dict[str, ModuleClassification]


def certify_partition_safety(
    index: ProjectIndex,
    effects: EffectsReport,
    scopes: frozenset[str] | set[str],
) -> PartitionReport:
    """Classify every module whose scope is in ``scopes``; collect violations.

    Violations are charged to the function whose *direct* effects perform
    the write (transitive callers would all repeat the same finding at a
    less actionable location).
    """
    roots = find_roots(index)
    reachable = index.reachable_from(roots)

    violations: list[PartitionViolation] = []
    for qual in sorted(reachable):
        # reachable_from can surface class quals (constructor calls on
        # classes without an __init__, e.g. dataclasses); only functions
        # have effects.
        fn = index.functions.get(qual)
        eff = effects.direct.get(qual)
        if fn is None or eff is None:
            continue
        shared = dict(eff.global_writes)
        shared.update(eff.class_writes)
        for target in sorted(shared):
            if _write_allowed(target):
                continue
            violations.append(PartitionViolation(
                kind="runtime-global-mutation",
                function=qual,
                target=target,
                path=fn.path,
                line=shared[target],
                root=reachable[qual],
            ))

    # Cross-network mutation: attribute stores on SimNetwork/Engine-typed
    # parameters outside the layers that own that state (sim + chaos, whose
    # whole job is reconfiguring the network it is handed).
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        entry = index.modules.get(fn.module)
        if entry is not None and entry.scope in ("sim", "chaos"):
            continue
        eff = effects.direct.get(qual)
        if eff is None:
            continue
        for target in sorted(eff.param_writes):
            cls_qual, _, attr = target.rpartition(".")
            if cls_qual.split(":")[-1] not in SIM_STATE_CLASSES:
                continue
            if attr in OBSERVER_SLOTS:
                continue
            violations.append(PartitionViolation(
                kind="cross-network-mutation",
                function=qual,
                target=target,
                path=fn.path,
                line=eff.param_writes[target],
                root=reachable.get(qual, "<unreachable>"),
            ))

    mutating_classes = runtime_mutating_methods(index, effects.direct)
    modules: dict[str, ModuleClassification] = {}
    for mod_name in sorted(index.modules):
        entry = index.modules[mod_name]
        if entry.scope not in scopes:
            continue
        mutable_globals = sorted(
            g.name for g in entry.globals_.values()
            # Dunder metadata (__all__ and friends) is a frozen declaration,
            # not shared state -- it never pushes a module out of the
            # shareable class.
            if g.mutable and not g.name.startswith("__")
        )
        cls_methods = {
            cls_qual.split(":")[-1]: sorted(methods)
            for cls_qual, methods in mutating_classes.items()
            if cls_qual.startswith(f"{mod_name}:")
        }
        writers = sorted({
            v.function for v in violations
            if v.kind == "runtime-global-mutation"
            and v.target.startswith(f"{mod_name}:")
        })
        if writers:
            classification = "cross-partition-mutating"
        elif mutable_globals or cls_methods:
            classification = "partition-local"
        else:
            classification = "shareable-immutable"
        modules[mod_name] = ModuleClassification(
            module=mod_name,
            classification=classification,
            mutable_globals=mutable_globals,
            runtime_mutating_classes=cls_methods,
            reachable_global_writers=writers,
        )

    return PartitionReport(
        roots=roots,
        reachable=reachable,
        violations=violations,
        modules=modules,
    )


def manifest_dict(report: PartitionReport, scopes: frozenset[str] | set[str]) -> dict:
    """The committed ``analyze-manifest.json`` payload.

    Keys are sorted and values canonical so regeneration is byte-stable;
    CI diffs this against the committed file.
    """
    return {
        "format": 1,
        "scopes": sorted(scopes),
        "roots": [r for r in report.roots],
        "modules": {
            name: mc.to_json()
            for name, mc in sorted(report.modules.items())
        },
    }
