"""Effects inference: what state does each function mutate?

For every function in the :class:`~repro.analyze.project.ProjectIndex` this
module computes an :class:`EffectSet`:

* ``self_writes`` -- instance attributes assigned or mutated through the
  receiver (``self.x = ...``, ``self.q.append(...)``);
* ``class_writes`` -- class attributes assigned through a project class
  (``Cls.registry[...] = ...``);
* ``global_writes`` -- module-level bindings assigned or mutated, in this
  module (including through a ``global`` declaration and through one level
  of local aliasing, ``table = REGISTRY; table[k] = v``) or in another
  module through an import (``SCHEMES["ni"] = ...``);
* ``param_writes`` -- attribute stores on a *parameter* whose type resolves
  to a project class (``net.trace = ...``): mutation of caller-owned state.

Direct effects are then propagated transitively through the call graph to a
fixpoint: a function inherits the global/class writes of everything it can
call.  ``self_writes``/``param_writes`` stay local -- they describe the
function's own receiver/arguments, which a caller maps onto *its* values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.project import (
    MUTATING_METHODS,
    FunctionInfo,
    ProjectIndex,
)


@dataclass
class EffectSet:
    """Mutation footprint of one function."""

    self_writes: dict[str, int] = field(default_factory=dict)
    """attr name -> first line it is written on."""

    class_writes: dict[str, int] = field(default_factory=dict)
    """``module:Cls.attr`` -> line."""

    global_writes: dict[str, int] = field(default_factory=dict)
    """``module:NAME`` -> line."""

    param_writes: dict[str, int] = field(default_factory=dict)
    """``ClassQual.attr`` -> line (attribute stores on typed parameters)."""

    def mutates_shared(self) -> bool:
        return bool(self.class_writes or self.global_writes)


def _receiver_name(fn: FunctionInfo) -> str | None:
    """The ``self`` parameter name of a method (None for functions)."""
    if fn.cls is None or fn.is_staticmethod or fn.is_classmethod:
        return None
    args = fn.node.args
    if args.posonlyargs:
        return args.posonlyargs[0].arg
    if args.args:
        return args.args[0].arg
    return None


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` a subscript/attribute chain hangs off."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FunctionEffects:
    """Single-function direct-effect extraction."""

    def __init__(self, index: ProjectIndex, fn: FunctionInfo) -> None:
        self.index = index
        self.fn = fn
        self.entry = index.modules[fn.module]
        self.receiver = _receiver_name(fn)
        self.effects = EffectSet()
        self.globals_declared: set[str] = set()
        self.aliases: dict[str, str] = {}
        """Local name -> module-global name it aliases (one level)."""

        self.locals_: set[str] = {
            a.arg for a in (
                list(fn.node.args.posonlyargs) + list(fn.node.args.args)
                + list(fn.node.args.kwonlyargs)
            )
        }
        self.param_types = {
            name: cls for name, cls in index._local_types(fn).items()
            if name in self.locals_ and name != self.receiver
        }

    # -- helpers -------------------------------------------------------
    def _global_target(self, name: str) -> str | None:
        """``module:NAME`` if ``name`` denotes a module-level binding."""
        name = self.aliases.get(name, name)
        if name in self.locals_:
            return None
        if name in self.entry.globals_:
            return f"{self.fn.module}:{name}"
        target = self.index.resolve_name(self.fn.module, name)
        if target is not None and ":" in target:
            mod, member = target.split(":", 1)
            mod_entry = self.index.modules.get(mod)
            if mod_entry is not None and member in mod_entry.globals_:
                return target
        return None

    def _note_store(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.effects.global_writes.setdefault(
                    f"{self.fn.module}:{target.id}", lineno)
            else:
                self.locals_.add(target.id)
            return
        root = _root_name(target)
        if root is None:
            return
        if root == self.receiver:
            attr = self._receiver_attr(target)
            if attr is not None:
                self.effects.self_writes.setdefault(attr, lineno)
            return
        if root in self.param_types:
            attr = self._first_attr(target)
            if attr is not None:
                cls = self.param_types[root]
                self.effects.param_writes.setdefault(
                    f"{cls.qual}.{attr}", lineno)
            return
        glob = self._global_target(root)
        if glob is not None:
            self.effects.global_writes.setdefault(glob, lineno)
            return
        cls_target = self.index.resolve_name(self.fn.module, root)
        if cls_target is not None and cls_target in self.index.classes \
                and isinstance(target, (ast.Attribute, ast.Subscript)):
            attr = self._first_attr(target) or "?"
            self.effects.class_writes.setdefault(
                f"{cls_target}.{attr}", lineno)

    def _receiver_attr(self, target: ast.AST) -> str | None:
        """``self.X...`` -> ``X`` (the instance attribute being touched)."""
        return self._first_attr(target)

    def _first_attr(self, target: ast.AST) -> str | None:
        """First attribute hop off the root name (``a.x[0].y`` -> ``x``)."""
        chain: list[ast.AST] = []
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            chain.append(node)
            node = node.value
        for hop in reversed(chain):
            if isinstance(hop, ast.Attribute):
                return hop.attr
        return None

    # -- walk ----------------------------------------------------------
    def run(self) -> EffectSet:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                self._maybe_alias(node)
                for t in node.targets:
                    self._note_store(t, node.lineno)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                self._note_store(node.target, node.lineno)
            elif isinstance(node, (ast.Delete,)):
                for t in node.targets:
                    self._note_store(t, node.lineno)
            elif isinstance(node, ast.Call):
                self._note_mutating_call(node)
            elif isinstance(node, ast.For):
                self._note_loop_target(node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._note_loop_target(item.optional_vars)
        return self.effects

    def _note_loop_target(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.locals_.add(node.id)

    def _maybe_alias(self, node: ast.Assign) -> None:
        """Record ``local = GLOBAL`` / ``local = GLOBAL[...]`` aliases."""
        root = _root_name(node.value) if not isinstance(
            node.value, ast.Call) else None
        if root is None:
            return
        resolved = self.aliases.get(root, root)
        if resolved in self.locals_:
            return
        if self._global_target(resolved) is None:
            return
        for t in node.targets:
            if isinstance(t, ast.Name):
                self.aliases[t.id] = resolved

    def _note_mutating_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATING_METHODS:
            return
        root = _root_name(func.value)
        if root is None:
            return
        if root == self.receiver:
            attr = self._first_attr(func.value)
            if attr is not None:
                self.effects.self_writes.setdefault(attr, node.lineno)
            return
        if root in self.param_types:
            attr = self._first_attr(func.value)
            if attr is not None:
                self.effects.param_writes.setdefault(
                    f"{self.param_types[root].qual}.{attr}", node.lineno)
            return
        glob = self._global_target(root)
        if glob is not None:
            self.effects.global_writes.setdefault(glob, node.lineno)


@dataclass
class EffectsReport:
    """Direct and transitive effects of every project function."""

    direct: dict[str, EffectSet]
    transitive: dict[str, EffectSet]

    def shared_writes(self, qual: str) -> dict[str, int]:
        """All global+class writes of a function, transitively."""
        eff = self.transitive.get(qual)
        if eff is None:
            return {}
        out = dict(eff.global_writes)
        out.update(eff.class_writes)
        return out


def infer_effects(index: ProjectIndex) -> EffectsReport:
    """Direct effects per function + transitive closure over the call graph."""
    direct: dict[str, EffectSet] = {}
    for qual in sorted(index.functions):
        direct[qual] = _FunctionEffects(index, index.functions[qual]).run()

    transitive: dict[str, EffectSet] = {
        qual: EffectSet(
            self_writes=dict(eff.self_writes),
            class_writes=dict(eff.class_writes),
            global_writes=dict(eff.global_writes),
            param_writes=dict(eff.param_writes),
        )
        for qual, eff in direct.items()
    }
    # Fixpoint: iterate until no function gains a new shared write.  The
    # call graph is small (a few hundred nodes) so a simple sweep is fine.
    changed = True
    while changed:
        changed = False
        for qual in sorted(transitive):
            eff = transitive[qual]
            for callee in sorted(index.callees.get(qual, ())):
                callee_eff = transitive.get(callee)
                if callee_eff is None:
                    continue
                for key, line in callee_eff.global_writes.items():
                    if key not in eff.global_writes:
                        eff.global_writes[key] = line
                        changed = True
                for key, line in callee_eff.class_writes.items():
                    if key not in eff.class_writes:
                        eff.class_writes[key] = line
                        changed = True
    return EffectsReport(direct=direct, transitive=transitive)


def runtime_mutating_methods(
    index: ProjectIndex, direct: dict[str, EffectSet]
) -> dict[str, set[str]]:
    """Per class, the instance-mutating methods reachable outside construction.

    A class is *runtime-mutating* when some non-constructor public entry
    point (any method whose name does not start with ``_`` and is not
    ``__init__``/``__post_init__``, nor a classmethod factory) can --
    directly or through intra-class private calls -- write ``self.*``.
    Classes whose every self-write is confined to construction can be
    shared read-only across partitions once built.
    """
    out: dict[str, set[str]] = {}
    for cls_qual in sorted(index.classes):
        cls = index.classes[cls_qual]
        ctor_family = {"__init__", "__post_init__", "__new__"}
        entries = [
            m for m in sorted(cls.methods)
            if m not in ctor_family
            and not m.startswith("_")
            and not cls.methods[m].is_classmethod
            and not cls.methods[m].is_property
        ]
        mutating: set[str] = set()
        for entry_name in entries:
            seen: set[str] = set()
            stack = [cls.methods[entry_name].qual]
            writes = False
            while stack and not writes:
                qual = stack.pop()
                if qual in seen:
                    continue
                seen.add(qual)
                eff = direct.get(qual)
                fn = index.functions.get(qual)
                if eff is not None and eff.self_writes and fn is not None \
                        and fn.cls == cls.name and fn.module == cls.module:
                    writes = True
                    break
                # Follow same-class calls only: other receivers are other
                # objects' state, charged to their own classes.
                for site in index.calls.get(qual, ()):
                    if site.callee is None:
                        continue
                    callee = index.functions.get(site.callee)
                    if callee is not None and callee.cls == cls.name \
                            and callee.module == cls.module:
                        stack.append(site.callee)
            if writes:
                mutating.add(entry_name)
        if mutating:
            out[cls_qual] = mutating
    return out
