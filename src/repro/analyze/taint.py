"""Determinism taint analysis: unordered iteration must not reach the engine.

The byte-identical-trace contract (DESIGN.md §6) rests on every event being
scheduled, traced, and seeded in an order that is a pure function of the
inputs.  ``set``/``frozenset`` iteration order is *not* such a function --
it depends on insertion history and on the hash seeds of the stored objects
-- so any flow from an unordered collection into the discrete-event engine
(:meth:`Engine.at`/:meth:`Engine.after`), the trace log
(:meth:`TraceLog.emit`), an arbitration heap (``heapq.heappush``) or a cell
seed (``derive_seed``) is a latent nondeterminism bug, even when today's
CPython happens to iterate small int sets in sorted order.

**Sources**: set/frozenset displays, comprehensions and constructor calls;
set algebra (``|``/``&``/``-``/``^`` and ``.union()``-family methods);
calls to project functions that return sets (propagated through the
project index); any *ordered* container built by iterating one of the
above (``list(s)``, ``[f(x) for x in s]`` -- the order is still tainted).

**Sinks**: ``.at(...)`` / ``.after(...)`` (event scheduling),
``.emit(...)`` (trace records), ``heapq.heappush`` (arbitration queues),
``derive_seed(...)`` (cell-seed derivation).  A sink fires when a tainted
value is passed as an argument *or* when the sink call sits lexically
inside a ``for`` loop whose iterable is tainted (the classic "schedule one
event per set element" pattern).

**Laundering**: wrapping in ``sorted(...)`` -- the idiom used throughout
``routing/`` (e.g. ``deadlock.py``'s ``sorted(..., key=lambda lk:
lk.link_id)``) -- or folding through an order-insensitive reduction
(``sum``/``min``/``max``/``len``/``any``/``all`` or a commutative bit-mask
accumulation) clears the taint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analyze.project import FunctionInfo, ProjectIndex, dotted_name

SINK_METHODS = {"at", "after", "emit"}
"""Attribute-call sinks: engine scheduling and trace emission."""

SINK_FUNCTIONS = {"heappush", "derive_seed"}
"""Bare-name call sinks: arbitration heaps and cell-seed derivation."""

LAUNDER_FUNCTIONS = {
    "sorted", "min", "max", "sum", "len", "any", "all", "frozenset_mask",
}
"""Calls whose result does not depend on the argument's iteration order."""

UNORDERED_CTORS = {"set", "frozenset"}

UNORDERED_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
"""Methods that return another unordered set when called on one."""

ORDER_PRESERVING_CTORS = {"list", "tuple", "iter", "reversed", "enumerate"}
"""Calls that materialise their argument's (possibly tainted) order."""


@dataclass(frozen=True)
class TaintFlow:
    """One unordered-source -> deterministic-sink flow."""

    path: str
    line: int
    col: int
    sink: str
    source: str

    def message(self) -> str:
        return (
            f"unordered iteration order reaches {self.sink}: {self.source}; "
            "launder through sorted(..., key=...) before it touches "
            "scheduling, tracing, or seed derivation"
        )


def returns_unordered(index: ProjectIndex) -> tuple[set[str], set[str]]:
    """Project functions (and method names) whose return value is a set.

    Determined from return annotations naming ``set``/``frozenset`` and from
    return statements whose expression is syntactically unordered.  Returns
    ``(quals, method_names)``; the name set lets attribute calls that the
    call graph could not resolve still count as sources.
    """
    quals: set[str] = set()
    names: set[str] = set()
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        ann = fn.node.returns
        ann_text = ""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            ann_text = ann.value
        elif ann is not None:
            ann_text = dotted_name(ann) or ""
        head = ann_text.split("[")[0].rsplit(".", 1)[-1].strip()
        is_set = head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if not is_set:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if _syntactically_unordered(node.value):
                        is_set = True
                        break
        if is_set:
            quals.add(qual)
            names.add(fn.name)
    return quals, names


def _syntactically_unordered(node: ast.AST) -> bool:
    """Unordered by construction, with no name environment."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in UNORDERED_CTORS:
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in UNORDERED_SET_METHODS:
            return _syntactically_unordered(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_syntactically_unordered(node.left)
                and _syntactically_unordered(node.right))
    return False


class _FunctionTaint:
    """Flow analysis over one function body."""

    def __init__(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        unordered_quals: set[str],
        unordered_names: set[str],
    ) -> None:
        self.index = index
        self.fn = fn
        self.unordered_quals = unordered_quals
        self.unordered_names = unordered_names
        self.env: dict[str, str] = {}
        """Tainted local name -> human-readable source description."""

        self.flows: list[TaintFlow] = []
        self._callee_by_line: dict[tuple[int, int], str] = {}
        for site in index.calls.get(fn.qual, ()):
            if site.callee is not None:
                self._callee_by_line.setdefault(
                    (site.lineno, 0), site.callee)

    # -- expression classification -------------------------------------
    def taint_of(self, node: ast.AST) -> str | None:
        """Source description if the expression's order/content is tainted."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set display"
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            left = self.taint_of(node.left)
            right = self.taint_of(node.right)
            if left and right:
                return left
            # Set algebra with one syntactic set operand taints the result
            # even when the other side's type is unknown.
            if left and _syntactically_unordered(node.right):
                return left
            if right and _syntactically_unordered(node.left):
                return right
            return None
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                src = self._iter_taint(gen.iter)
                if src is not None:
                    return f"comprehension over {src}"
            return None
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        return None

    def _call_taint(self, node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        short = name.rsplit(".", 1)[-1] if name is not None else None
        if short in LAUNDER_FUNCTIONS:
            return None
        if short in UNORDERED_CTORS:
            return f"{short}(...)"
        if short in ORDER_PRESERVING_CTORS:
            for arg in node.args:
                src = self._iter_taint(arg)
                if src is not None:
                    return f"{short}() over {src}"
            return None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in UNORDERED_SET_METHODS:
                src = self._iter_taint(node.func.value)
                if src is not None or _syntactically_unordered(node.func.value):
                    return f".{node.func.attr}() on {src or 'a set'}"
            if node.func.attr in self.unordered_names:
                return f"{node.func.attr}() (returns a set)"
        callee = self._callee_by_line.get(
            (getattr(node, "lineno", 0), 0))
        if callee in self.unordered_quals:
            return f"{callee.split(':')[-1]}() (returns a set)"
        if isinstance(node.func, ast.Name) \
                and node.func.id in self.unordered_names:
            return f"{node.func.id}() (returns a set)"
        return None

    def _iter_taint(self, node: ast.AST) -> str | None:
        """Taint of iterating this expression (order-sensitive contexts)."""
        return self.taint_of(node)

    # -- statement walk ------------------------------------------------
    def run(self) -> list[TaintFlow]:
        # Fixpoint over assignments so use-before-def ordering (helpers
        # defined below their callers, loops feeding accumulators) settles.
        for _ in range(4):
            before = dict(self.env)
            self._collect_assignments(self.fn.node.body)
            if self.env == before:
                break
        self._walk(self.fn.node.body, loop_taints=[])
        return self.flows

    def _collect_assignments(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    src = self.taint_of(node.value)
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            if src is not None:
                                self.env[t.id] = src
                            elif t.id in self.env and \
                                    not self._still_tainted(node.value):
                                del self.env[t.id]
                elif isinstance(node, ast.AnnAssign) and node.value is not None \
                        and isinstance(node.target, ast.Name):
                    src = self.taint_of(node.value)
                    if src is not None:
                        self.env[node.target.id] = src
                elif isinstance(node, ast.For):
                    self._collect_accumulators(node)

    def _still_tainted(self, value: ast.AST) -> bool:
        return self.taint_of(value) is not None

    def _collect_accumulators(self, loop: ast.For) -> None:
        """A container filled inside a tainted-order loop is itself tainted."""
        src = self._iter_taint(loop.iter)
        if src is None:
            return
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("append", "extend", "insert") \
                    and isinstance(node.func.value, ast.Name):
                self.env[node.func.value.id] = (
                    f"accumulation inside loop over {src}")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for t in targets:
                    if isinstance(t, ast.Subscript) \
                            and isinstance(t.value, ast.Name):
                        self.env[t.value.id] = (
                            f"keyed insertion inside loop over {src}")

    def _walk(self, body: list[ast.stmt], loop_taints: list[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                src = self._iter_taint(stmt.iter)
                inner = loop_taints + ([src] if src is not None else [])
                self._check_calls_in(stmt.iter, loop_taints)
                self._walk(stmt.body, inner)
                self._walk(stmt.orelse, loop_taints)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_calls_in(stmt.test, loop_taints)
                self._walk(stmt.body, loop_taints)
                self._walk(stmt.orelse, loop_taints)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, loop_taints)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, loop_taints)
                for h in stmt.handlers:
                    self._walk(h.body, loop_taints)
                self._walk(stmt.orelse, loop_taints)
                self._walk(stmt.finalbody, loop_taints)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs (steer closures) execute later but inherit the
                # lexical environment; loop context does not apply to them.
                self._walk(stmt.body, [])
            else:
                self._check_calls_in(stmt, loop_taints)

    def _check_calls_in(
        self, node: ast.AST, loop_taints: list[str]
    ) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            sink = self._sink_name(call)
            if sink is None:
                continue
            tainted_arg = None
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                tainted_arg = self.taint_of(arg)
                if tainted_arg is not None:
                    break
            source = tainted_arg
            if source is None and loop_taints:
                source = f"sink inside loop over {loop_taints[-1]}"
            if source is not None:
                self.flows.append(TaintFlow(
                    path=self.fn.path,
                    line=getattr(call, "lineno", self.fn.lineno),
                    col=getattr(call, "col_offset", 0),
                    sink=sink,
                    source=source,
                ))

    def _sink_name(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in SINK_METHODS:
            base = dotted_name(func.value) or "<expr>"
            return f"{base}.{func.attr}()"
        name = dotted_name(func)
        if name is not None and name.rsplit(".", 1)[-1] in SINK_FUNCTIONS:
            return f"{name}()"
        return None


def analyze_taint(
    index: ProjectIndex, modules: list[str] | None = None
) -> list[TaintFlow]:
    """Run the taint analysis over (a subset of) the indexed modules."""
    unordered_quals, unordered_names = returns_unordered(index)
    flows: list[TaintFlow] = []
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if modules is not None and fn.module not in modules:
            continue
        flows.extend(
            _FunctionTaint(index, fn, unordered_quals, unordered_names).run()
        )
    flows.sort(key=lambda f: (f.path, f.line, f.col, f.sink))
    return flows
