"""Lint-registry bridge: the whole-program analyzers as lint rules.

Importing this module registers four rules, so ``repro-lint`` and
``repro-analyze`` agree on rule ids, severities, and suppressions:

* ``identity-in-sim`` (code) -- ``id()`` / ``os.environ`` inside simulation
  scopes;
* ``unordered-into-sink`` (project) -- the determinism taint analysis;
* ``runtime-global-mutation`` (project) -- runner-reachable mutation of
  module-level state;
* ``cross-network-mutation`` (project) -- writes to ``SimNetwork`` /
  ``Engine`` state from outside the sim layer.

The three project rules share one :class:`ProjectIndex` + effects pass per
file set (cached on source content), so registering them adds a single
whole-program walk to a lint run, not three.
"""

from __future__ import annotations

import ast

from repro.analyze.effects import EffectsReport, infer_effects
from repro.analyze.partition import PartitionReport, certify_partition_safety
from repro.analyze.project import ProjectIndex, dotted_name
from repro.analyze.taint import analyze_taint
from repro.lint.findings import Finding, Severity
from repro.lint.registry import SIM_SCOPES, rule
from repro.lint.sources import ParsedFile

_CACHE: dict[tuple, tuple[ProjectIndex, EffectsReport, PartitionReport]] = {}


def _analysis_for(
    files: dict[str, ParsedFile],
) -> tuple[ProjectIndex, EffectsReport, PartitionReport]:
    """One shared index/effects/partition pass per distinct file set."""
    key = tuple(sorted(
        (pf.path, hash(pf.source)) for pf in files.values()
    ))
    hit = _CACHE.get(key)
    if hit is None:
        index = ProjectIndex.build(files)
        effects = infer_effects(index)
        partition = certify_partition_safety(index, effects, SIM_SCOPES)
        hit = (index, effects, partition)
        _CACHE.clear()  # keep exactly the latest file set
        _CACHE[key] = hit
    return hit


def _sim_modules(index: ProjectIndex) -> list[str]:
    """Modules the determinism rules apply to (sim scopes + fixtures)."""
    return sorted(
        name for name, entry in index.modules.items()
        if entry.scope is None or entry.scope in SIM_SCOPES
    )


# ----------------------------------------------------------------------
# identity-in-sim (code rule)
# ----------------------------------------------------------------------
@rule(
    "identity-in-sim",
    kind="code",
    description=(
        "no id() or os.environ inside simulation scopes: object identity "
        "and environment state are not functions of the inputs"
    ),
    rationale=(
        "id() values are allocator addresses -- reused after GC and "
        "different across runs -- and os.environ varies by machine; either "
        "one reaching an event key, cache key, or seed breaks the "
        "byte-identical-trace contract (DESIGN.md §6)."
    ),
    scopes=SIM_SCOPES,
)
def check_identity_in_sim(
    tree: ast.Module, path: str, scope: str | None
) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        message = None
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "id":
            message = (
                "id() is an allocator address: reused after GC within a "
                "run and unstable across runs; key on stable fields (link "
                "ids, node ids, routing_epoch) or a weak-keyed mapping"
            )
        elif isinstance(node, ast.Attribute) and node.attr == "environ" \
                and dotted_name(node) == "os.environ":
            message = (
                "os.environ read in simulation logic: results would vary "
                "by machine; thread configuration in through SimParams or "
                "the experiment profile"
            )
        if message is not None:
            findings.append(Finding(
                rule="identity-in-sim",
                severity=Severity.ERROR,
                path=path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            ))
    return findings


# ----------------------------------------------------------------------
# unordered-into-sink (project rule)
# ----------------------------------------------------------------------
@rule(
    "unordered-into-sink",
    kind="project",
    description=(
        "unordered-collection iteration order must not flow into event "
        "scheduling, trace records, arbitration heaps, or seed derivation"
    ),
    rationale=(
        "set/frozenset iteration order depends on insertion history and "
        "hash seeds; any flow into Engine.at/.after, TraceLog.emit, "
        "heappush, or derive_seed not laundered through sorted(...) makes "
        "the trace digest a function of memory layout instead of inputs."
    ),
)
def check_unordered_into_sink(files: dict[str, ParsedFile]) -> list[Finding]:
    index, _effects, _partition = _analysis_for(files)
    return [
        Finding(
            rule="unordered-into-sink",
            severity=Severity.ERROR,
            path=flow.path,
            line=flow.line,
            col=flow.col,
            message=flow.message(),
        )
        for flow in analyze_taint(index, modules=_sim_modules(index))
    ]


# ----------------------------------------------------------------------
# partition-safety rules (project)
# ----------------------------------------------------------------------
@rule(
    "runtime-global-mutation",
    kind="project",
    description=(
        "no function reachable from a runner cell may mutate module-level "
        "state (outside the ExecutionContext API)"
    ),
    rationale=(
        "the sharded runner (repro.shard) partitions the simulation across "
        "workers; "
        "module globals are process-shared, so a runner-reachable write is "
        "a data race the moment cells run in threads or shards."
    ),
)
def check_runtime_global_mutation(
    files: dict[str, ParsedFile],
) -> list[Finding]:
    _index, _effects, partition = _analysis_for(files)
    return [
        Finding(
            rule="runtime-global-mutation",
            severity=Severity.ERROR,
            path=v.path,
            line=v.line,
            col=0,
            message=v.message(),
        )
        for v in partition.violations
        if v.kind == "runtime-global-mutation"
    ]


@rule(
    "cross-network-mutation",
    kind="project",
    description=(
        "only the sim/chaos layers may write SimNetwork or Engine state "
        "they are handed (observer slots trace/worm_log excepted)"
    ),
    rationale=(
        "a SimNetwork belongs to exactly one partition; measurement and "
        "planning code writing it from outside the sim layer is a "
        "cross-partition write the sharded runner cannot serialize."
    ),
)
def check_cross_network_mutation(
    files: dict[str, ParsedFile],
) -> list[Finding]:
    _index, _effects, partition = _analysis_for(files)
    return [
        Finding(
            rule="cross-network-mutation",
            severity=Severity.ERROR,
            path=v.path,
            line=v.line,
            col=0,
            message=v.message(),
        )
        for v in partition.violations
        if v.kind == "cross-network-mutation"
    ]
