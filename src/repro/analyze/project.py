"""Project-wide symbol table and call graph over the ``repro`` package.

The lint engine hands rules one parsed file at a time; the analyzers in this
package need to answer questions that span files -- "who calls whom", "which
name is a module-level mutable object", "what class is this variable an
instance of".  :class:`ProjectIndex` answers them from the same
:class:`~repro.lint.sources.ParsedFile` inputs the lint engine already
produces, so both front doors (``repro-analyze`` and the lint bridge) share
one index.

Resolution is deliberately *best-effort and deterministic*: a call that
cannot be resolved statically (duck-typed attribute calls on values of
unknown type) is recorded as unresolved rather than guessed at.  The
analyzers that consume the graph treat unresolved calls as effect-free,
which keeps findings precise (no false positives from wild aliasing) at the
cost of missing effects behind truly dynamic dispatch -- an accepted trade
documented in docs/analysis.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.sources import ParsedFile

MUTABLE_CTORS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque",
    "Counter", "WeakKeyDictionary", "ContextVar",
}
"""Constructor names whose result is a mutable (or settable) object."""

MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "popleft", "set", "sort", "reverse",
}
"""Method names that mutate their receiver in place."""


def is_mutable_literal(node: ast.AST) -> bool:
    """Whether a module-level binding's value is a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return (
            name is not None
            and name.rsplit(".", 1)[-1] in MUTABLE_CTORS
        )
    return False


def dotted_name(node: ast.AST) -> str | None:
    """Render an attribute/name chain like ``repro.sim.engine.Engine``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qual: str
    """``module:name`` or ``module:Class.name``."""

    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    is_classmethod: bool = False
    is_staticmethod: bool = False
    is_property: bool = False


@dataclass
class ClassInfo:
    """One class definition with its methods and base-class names."""

    qual: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    """Base expressions as dotted source text (resolved lazily)."""

    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class GlobalInfo:
    """One module-level binding."""

    qual: str
    """``module:NAME``."""

    module: str
    name: str
    lineno: int
    mutable: bool
    """Whether the bound value is a mutable container (or re-assignable
    coordination object like a ContextVar)."""

    value_repr: str
    """Short source-ish description of the bound value (for reports)."""


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str
    callee: str | None
    """Resolved ``module:qualname`` of the target, or None if unresolved."""

    attr: str | None
    """For attribute calls, the method name (even when unresolved)."""

    lineno: int


@dataclass
class ModuleEntry:
    """Everything the index knows about one module."""

    name: str
    path: str
    scope: str | None
    tree: ast.Module
    source: str
    imports: dict[str, str] = field(default_factory=dict)
    """Local name -> dotted target: a module (``repro.sim.engine``) or a
    member (``repro.sim.engine:Engine``)."""

    globals_: dict[str, GlobalInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out = set()
    for d in node.decorator_list:
        name = dotted_name(d.func if isinstance(d, ast.Call) else d)
        if name is not None:
            out.add(name.rsplit(".", 1)[-1])
    return out


class ProjectIndex:
    """Symbol table + call graph over a set of parsed files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleEntry] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.callees: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: dict[str, ParsedFile]) -> "ProjectIndex":
        """Index every file, then resolve the call graph."""
        index = cls()
        for path in sorted(files):
            index._index_module(files[path])
        for mod_name in sorted(index.modules):
            index._resolve_calls(index.modules[mod_name])
        return index

    def _index_module(self, pf: ParsedFile) -> None:
        entry = ModuleEntry(
            name=pf.module, path=pf.path, scope=pf.scope,
            tree=pf.tree, source=pf.source,
        )
        self.modules[pf.module] = entry
        self._collect_imports(pf.tree, entry)
        for node in pf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(entry, node, cls_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(entry, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._add_globals(entry, node)

    def _collect_imports(self, tree: ast.Module, entry: ModuleEntry) -> None:
        # Imports at every nesting level count for *name resolution* (the
        # project uses function-local imports as deliberate cycle breakers,
        # and calls through them still need resolving).
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    target = a.name if a.asname else a.name.split(".")[0]
                    entry.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    entry.imports[a.asname or a.name] = (
                        f"{node.module}:{a.name}"
                    )

    def _add_function(
        self,
        entry: ModuleEntry,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
    ) -> None:
        qual = (
            f"{entry.name}:{cls_name}.{node.name}" if cls_name
            else f"{entry.name}:{node.name}"
        )
        decos = _decorator_names(node)
        info = FunctionInfo(
            qual=qual, module=entry.name, cls=cls_name, name=node.name,
            node=node, path=entry.path, lineno=node.lineno,
            is_classmethod="classmethod" in decos,
            is_staticmethod="staticmethod" in decos,
            is_property="property" in decos or "cached_property" in decos,
        )
        self.functions[qual] = info
        if cls_name is None:
            entry.functions[node.name] = info
        else:
            entry.classes[cls_name].methods[node.name] = info

    def _add_class(self, entry: ModuleEntry, node: ast.ClassDef) -> None:
        qual = f"{entry.name}:{node.name}"
        info = ClassInfo(
            qual=qual, module=entry.name, name=node.name, node=node,
            path=entry.path, lineno=node.lineno,
            bases=[b for b in map(dotted_name, node.bases) if b is not None],
        )
        entry.classes[node.name] = info
        self.classes[qual] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(entry, item, cls_name=node.name)
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name) and item.value is not None:
                pass  # dataclass fields: instance state, not class globals

    def _add_globals(
        self, entry: ModuleEntry, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None:
            return
        for t in targets:
            if not isinstance(t, ast.Name):
                continue
            entry.globals_[t.id] = GlobalInfo(
                qual=f"{entry.name}:{t.id}",
                module=entry.name,
                name=t.id,
                lineno=node.lineno,
                mutable=is_mutable_literal(value),
                value_repr=type(value).__name__,
            )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> str | None:
        """Resolve a bare name used in ``module`` to a project symbol.

        Returns ``mod:member`` for functions/classes/globals, ``mod`` for a
        module, or None when the name is not a project symbol (builtins,
        stdlib, third-party).
        """
        entry = self.modules.get(module)
        if entry is None:
            return None
        if name in entry.functions or name in entry.classes:
            return f"{module}:{name}"
        if name in entry.globals_:
            return f"{module}:{name}"
        target = entry.imports.get(name)
        if target is None:
            return None
        if ":" in target:
            mod, member = target.split(":", 1)
            # ``from pkg import submodule`` looks like a member import but
            # names a module we scanned.
            if f"{mod}.{member}" in self.modules:
                return f"{mod}.{member}"
            if mod in self.modules:
                resolved = self._member_of(mod, member)
                if resolved is not None:
                    return resolved
            return target if mod.split(".")[0] == "repro" else None
        if target in self.modules:
            return target
        return target if target.split(".")[0] == "repro" else None

    def _member_of(self, module: str, member: str) -> str | None:
        """``module:member`` if it names a function/class/global there,
        following one level of re-export through package ``__init__``."""
        entry = self.modules.get(module)
        if entry is None:
            return None
        if member in entry.functions or member in entry.classes \
                or member in entry.globals_:
            return f"{module}:{member}"
        # Package __init__ re-export: chase its own import of the name.
        reexport = entry.imports.get(member)
        if reexport is not None and ":" in reexport:
            mod2, member2 = reexport.split(":", 1)
            if mod2 != module and mod2 in self.modules:
                return self._member_of(mod2, member2)
        elif reexport is not None and reexport in self.modules:
            return reexport
        return None

    def resolve_class(self, module: str, dotted: str) -> ClassInfo | None:
        """Resolve a dotted type expression to a project class, if any."""
        head, _, rest = dotted.partition(".")
        target = self.resolve_name(module, head)
        if target is None:
            return None
        if rest and ":" not in target and target in self.modules:
            target = self._member_of(target, rest) or target
        cls = self.classes.get(target)
        return cls

    def method_on(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Look up a method on a class, walking project-resolvable bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop(0)
            if c.qual in seen:
                continue
            seen.add(c.qual)
            if name in c.methods:
                return c.methods[name]
            for base in c.bases:
                resolved = self.resolve_class(c.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _local_types(
        self, fn: FunctionInfo
    ) -> dict[str, ClassInfo]:
        """Best-effort local-variable / parameter types within a function.

        Sources: ``self`` (the enclosing class), annotated parameters whose
        annotation resolves to a project class, and assignments from a
        project-class constructor call.
        """
        types: dict[str, ClassInfo] = {}
        if fn.cls is not None and not fn.is_staticmethod:
            args = fn.node.args
            receiver = None
            if args.posonlyargs:
                receiver = args.posonlyargs[0].arg
            elif args.args:
                receiver = args.args[0].arg
            if receiver is not None and not fn.is_classmethod:
                cls = self.classes.get(f"{fn.module}:{fn.cls}")
                if cls is not None:
                    types[receiver] = cls
        all_args = (
            list(fn.node.args.posonlyargs) + list(fn.node.args.args)
            + list(fn.node.args.kwonlyargs)
        )
        for a in all_args:
            if a.annotation is None:
                continue
            ann = a.annotation
            # Strip `X | None` unions and string annotations.
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                text = ann.value.split("|")[0].strip()
            else:
                if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
                    ann = ann.left
                text = dotted_name(ann) or ""
            if text:
                cls = self.resolve_class(fn.module, text)
                if cls is not None:
                    types[a.arg] = cls
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                if name is None:
                    continue
                cls = self.resolve_class(fn.module, name)
                if cls is None:
                    continue
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        types[t.id] = cls
        return types

    def _resolve_call(
        self, fn: FunctionInfo, call: ast.Call,
        types: dict[str, ClassInfo],
    ) -> CallSite:
        func = call.func
        callee: str | None = None
        attr: str | None = None
        if isinstance(func, ast.Name):
            target = self.resolve_name(fn.module, func.id)
            if target is not None and ":" in target:
                mod, member = target.split(":", 1)
                if target in self.functions:
                    callee = target
                elif target in self.classes:
                    init = self.method_on(self.classes[target], "__init__")
                    callee = init.qual if init is not None else target
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            if isinstance(base, ast.Name) and base.id in types:
                m = self.method_on(types[base.id], attr)
                callee = m.qual if m is not None else None
            else:
                name = dotted_name(func)
                if name is not None:
                    head, _, rest = name.rpartition(".")
                    target = None
                    if head:
                        target = self.resolve_name(fn.module, head) \
                            if "." not in head else None
                        if target is None and head in self.modules:
                            target = head
                        # Dotted module path used directly (import repro.x.y).
                        if target is None:
                            root = head.split(".")[0]
                            resolved_root = self.resolve_name(fn.module, root)
                            if resolved_root is not None and \
                                    ":" not in resolved_root:
                                candidate = ".".join(
                                    [resolved_root] + head.split(".")[1:]
                                )
                                if candidate in self.modules:
                                    target = candidate
                    if target is not None and ":" not in target:
                        member = self._member_of(target, rest)
                        if member is not None and member in self.functions:
                            callee = member
                        elif member is not None and member in self.classes:
                            init = self.method_on(
                                self.classes[member], "__init__")
                            callee = init.qual if init is not None else member
                    elif target is not None and target in self.classes:
                        m = self.method_on(self.classes[target], rest)
                        callee = m.qual if m is not None else None
        return CallSite(
            caller=fn.qual, callee=callee, attr=attr,
            lineno=getattr(call, "lineno", fn.lineno),
        )

    def _resolve_calls(self, entry: ModuleEntry) -> None:
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            if fn.module != entry.name:
                continue
            types = self._local_types(fn)
            sites: list[CallSite] = []
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    sites.append(self._resolve_call(fn, node, types))
            self.calls[qual] = sites
            self.callees[qual] = {
                s.callee for s in sites if s.callee is not None
            }

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(self, roots: list[str]) -> dict[str, str]:
        """Functions reachable from ``roots`` through resolved calls.

        Returns ``{function qual: first root it was reached from}`` --
        enough provenance for a finding to explain *why* a function counts
        as runner-cell-reachable.
        """
        out: dict[str, str] = {}
        for root in roots:
            if root not in self.functions:
                continue
            stack = [root]
            while stack:
                qual = stack.pop()
                if qual in out:
                    continue
                out[qual] = root
                for callee in sorted(self.callees.get(qual, ())):
                    if callee not in out:
                        stack.append(callee)
        return out
