"""Epoch-sequence model verifier: safety at *every* routing epoch.

The model rules in :mod:`repro.lint.model_rules` verify one (topology,
routing) instance -- epoch 0.  A chaos :class:`FaultSchedule`, however,
walks the system through a *sequence* of epochs: each fault removes a link,
Autonet-style reconfiguration rebuilds the up*/down* orientation, and every
in-flight retry then runs on the new tables.  A schedule is only safe if
the multicast-extended channel dependency graph stays acyclic and the
reachability strings stay consistent with the orientation's own witness
(BFS subtrees for Autonet's rule, preorder labels for DFS) at **each**
epoch, not just the first.

This verifier replays a fault schedule purely statically: degrade the
topology link by link, rebuild :class:`UpDownRouting` +
:class:`ReachabilityTable` exactly as :meth:`SimNetwork.reconfigure` would,
and re-prove both invariants per epoch.  It runs from three front doors:

* ``repro-analyze`` over the committed fuzz/chaos corpora (CI),
* the fuzz harness's ``epoch-static`` oracle before each dynamic replay,
* tests, which inject a corrupting ``routing_builder`` to prove the
  verifier actually detects a planted epoch-1 cycle.

No :mod:`repro.lint` import here -- the fuzz package consumes this module
and must not drag the lint registry into scenario replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.routing.deadlock import (
    build_escape_cdg,
    build_multicast_cdg,
    escape_subgraph,
    find_cycle,
)
from repro.routing.reachability import ReachabilityTable
from repro.routing.updown import UpDownRouting
from repro.topology.faults import remove_link
from repro.topology.graph import NetworkTopology

RoutingBuilder = Callable[[NetworkTopology, int], UpDownRouting]
"""``(degraded_topo, epoch) -> routing`` -- injectable so tests can plant a
corrupt orientation at a chosen epoch."""


@dataclass(frozen=True)
class EpochProblem:
    """One invariant violation at one routing epoch."""

    epoch: int
    kind: str
    """``cdg-cycle``, ``escape-cdg-cycle``, ``reachability``, or
    ``disconnect``."""

    detail: str

    def message(self) -> str:
        return f"epoch {self.epoch}: {self.kind}: {self.detail}"


def _default_builder(orientation: str) -> RoutingBuilder:
    def build(topo: NetworkTopology, epoch: int) -> UpDownRouting:
        return UpDownRouting.build(topo, orientation=orientation)
    return build


def _subtree_nodes(
    topo: NetworkTopology, routing: UpDownRouting
) -> dict[int, set[int]]:
    """Nodes attached to each switch's BFS-tree subtree (inclusive)."""
    tree = routing.tree
    out: dict[int, set[int]] = {
        s: set(topo.nodes_on_switch(s))
        for s in range(topo.num_switches)
    }
    order = sorted(range(topo.num_switches),
                   key=lambda s: tree.level[s], reverse=True)
    for s in order:
        if tree.parent[s] >= 0:
            out[tree.parent[s]] |= out[s]
    return out


def _check_reachability_dfs(
    topo: NetworkTopology, routing: UpDownRouting, epoch: int
) -> list[EpochProblem]:
    """Reachability invariants for the DFS-preorder orientation.

    The BFS-subtree premise of :func:`_check_reachability_bfs` does not
    hold here -- a BFS-tree edge may legitimately point *up* under DFS
    labels.  The DFS orientation is a total order, so the independent
    witness is the label assignment itself: every link's up end must be
    the lower-label end (a full recomputation of the orientation), and
    the label-0 root must down-reach every node (the tree-worm scheme's
    covering ancestor).
    """
    from repro.routing.dfs_tree import dfs_preorder_labels

    problems: list[EpochProblem] = []
    labels = dfs_preorder_labels(topo)
    for lk in topo.links:
        want = (
            lk.a.switch
            if labels[lk.a.switch] < labels[lk.b.switch]
            else lk.b.switch
        )
        if routing.up_end_switch(lk) != want:
            problems.append(EpochProblem(
                epoch=epoch, kind="reachability",
                detail=(f"link {lk.link_id}: up end "
                        f"{routing.up_end_switch(lk)} contradicts the DFS "
                        f"preorder labels (expected {want})"),
            ))
    reach = ReachabilityTable.build(routing)
    root = labels.index(0)
    missing = set(range(topo.num_nodes)) - reach.down_reach(root)
    if missing:
        problems.append(EpochProblem(
            epoch=epoch, kind="reachability",
            detail=(f"DFS root switch {root} fails to down-reach nodes "
                    f"{sorted(missing)}"),
        ))
    return problems


def _check_reachability_bfs(
    topo: NetworkTopology, routing: UpDownRouting, epoch: int
) -> list[EpochProblem]:
    """Reachability invariants against the independent BFS-tree witness."""
    problems: list[EpochProblem] = []
    reach = ReachabilityTable.build(routing)
    subtree = _subtree_nodes(topo, routing)
    tree = routing.tree
    links_by_id = {lk.link_id: lk for lk in topo.links}
    for s in range(topo.num_switches):
        missing = subtree[s] - reach.down_reach(s)
        if missing:
            problems.append(EpochProblem(
                epoch=epoch, kind="reachability",
                detail=(f"switch {s}: down-reachability misses BFS "
                        f"descendants {sorted(missing)}"),
            ))
        parent = tree.parent[s]
        if parent < 0:
            continue
        link = links_by_id[tree.parent_link[s]]
        if routing.is_up_traversal(link, parent):
            problems.append(EpochProblem(
                epoch=epoch, kind="reachability",
                detail=(f"BFS tree link {link.link_id} (switch {parent} -> "
                        f"child {s}) is oriented up -- the orientation "
                        "contradicts the spanning tree"),
            ))
            continue
        port_missing = subtree[s] - reach.port_reach(parent, link)
        if port_missing:
            problems.append(EpochProblem(
                epoch=epoch, kind="reachability",
                detail=(f"switch {parent} down port on link {link.link_id}: "
                        f"reachability string misses subtree nodes "
                        f"{sorted(port_missing)}"),
            ))
    return problems


def _check_epoch(
    topo: NetworkTopology,
    routing: UpDownRouting,
    epoch: int,
    orientation: str = "bfs",
) -> list[EpochProblem]:
    problems: list[EpochProblem] = []
    cycle = find_cycle(build_multicast_cdg(topo, routing))
    if cycle is not None:
        problems.append(EpochProblem(
            epoch=epoch, kind="cdg-cycle",
            detail=("multicast-extended channel dependency graph has a "
                    "cycle: " + " -> ".join(map(str, cycle))),
        ))
    # Escape-VC fabric: lane 0 must stay an acyclic escape path at every
    # epoch.  The escape subgraph is lane-count invariant, so vc_count=2 is
    # a representative of every lane count the fabric may run with.
    esc_cycle = find_cycle(
        escape_subgraph(build_escape_cdg(topo, routing, vc_count=2))
    )
    if esc_cycle is not None:
        problems.append(EpochProblem(
            epoch=epoch, kind="escape-cdg-cycle",
            detail=("escape-lane (VC 0) channel dependency graph has a "
                    "cycle: " + " -> ".join(map(str, esc_cycle))),
        ))
    # The reachability witness depends on the orientation rule: the BFS
    # spanning tree for Autonet's rule, the preorder labels for DFS (a
    # BFS-tree edge may legitimately point up under DFS labels, so the
    # BFS premise would report false cycles-of-authority there).
    if orientation == "dfs":
        problems.extend(_check_reachability_dfs(topo, routing, epoch))
    else:
        problems.extend(_check_reachability_bfs(topo, routing, epoch))
    return problems


def verify_epoch_sequence(
    topo: NetworkTopology,
    fault_links: tuple[int, ...] | list[int],
    orientation: str = "bfs",
    routing_builder: RoutingBuilder | None = None,
) -> list[EpochProblem]:
    """Statically replay a fault sequence; prove both invariants per epoch.

    Epoch 0 is the intact topology; epoch ``k`` is after the first ``k``
    faults, rebuilt with ``routing_builder`` (default: the same
    :meth:`UpDownRouting.build` call :meth:`SimNetwork.reconfigure` makes).
    A fault that would disconnect the switch graph is itself a finding
    (the chaos layer could never absorb it), and replay stops there.

    Returns the (possibly empty) problem list; empty means the whole
    sequence is proven safe.
    """
    builder = routing_builder or _default_builder(orientation)
    problems: list[EpochProblem] = []
    current = topo
    for epoch in range(len(fault_links) + 1):
        problems.extend(
            _check_epoch(current, builder(current, epoch), epoch, orientation)
        )
        if epoch == len(fault_links):
            break
        link_id = fault_links[epoch]
        try:
            current = remove_link(current, link_id)
        except ValueError as exc:
            problems.append(EpochProblem(
                epoch=epoch + 1, kind="disconnect",
                detail=f"fault on link {link_id} is not absorbable: {exc}",
            ))
            break
    return problems


def verify_scenario_epochs(scenario) -> list[EpochProblem]:
    """Verify a :class:`FuzzScenario`'s fault schedule epoch by epoch.

    Links fail in fire-time order (ties keep schedule order), matching the
    chaos :class:`FaultInjector`'s arming semantics.  Scenarios without a
    schedule still get their epoch-0 proof.
    """
    ordered = sorted(
        range(len(scenario.fault_schedule)),
        key=lambda i: (scenario.fault_schedule[i][0], i),
    )
    links = [scenario.fault_schedule[i][1] for i in ordered]
    return verify_epoch_sequence(
        scenario.topo, links, orientation=scenario.params.routing_tree,
    )
