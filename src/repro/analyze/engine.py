"""Analyze engine: one entry point running every whole-program pass.

:func:`run_analysis` is what ``repro-analyze`` (and the tests) call.  It

1. parses the target files with the same source discovery the lint engine
   uses (shared suppression mechanism, shared scoping);
2. runs the analyzer rules -- identity, taint, partition safety -- through
   the same check functions registered in the lint registry;
3. applies ``# lint: disable=`` suppressions with statement anchoring, and
   *requires a justification* (`` -- why``) on every suppression of an
   analyze rule: a bare suppression is itself a finding;
4. regenerates the partition-safety manifest and (optionally) diffs it
   against the committed ``analyze-manifest.json``;
5. statically verifies every fuzz/chaos corpus entry's fault schedule with
   the epoch-sequence verifier.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.analyze.epochs import verify_scenario_epochs
from repro.analyze.partition import manifest_dict
from repro.analyze.rules import (
    _analysis_for,
    check_cross_network_mutation,
    check_identity_in_sim,
    check_runtime_global_mutation,
    check_unordered_into_sink,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import SIM_SCOPES, rule_applies
from repro.lint.sources import ParsedFile, collect_py_files, parse_file
from repro.lint.suppress import (
    parse_suppression_comments,
    statement_anchors,
)

ANALYZE_RULES = frozenset({
    "identity-in-sim",
    "unordered-into-sink",
    "runtime-global-mutation",
    "cross-network-mutation",
})
"""Rule ids whose suppression requires a justification comment."""

MANIFEST_NAME = "analyze-manifest.json"


@dataclass
class AnalysisResult:
    """Outcome of one ``repro-analyze`` run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    manifest: dict = field(default_factory=dict)
    epochs_verified: dict[str, int] = field(default_factory=dict)
    """Corpus entry path -> number of routing epochs proven safe."""

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def render_manifest(manifest: dict) -> str:
    """Canonical byte form of the manifest (what gets committed)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def _apply_suppressions(
    files: dict[str, ParsedFile],
    findings: list[Finding],
    result: AnalysisResult,
) -> None:
    """Drop suppressed findings; flag unjustified analyze-rule suppressions."""
    comments = {
        pf.path: parse_suppression_comments(pf.source)
        for pf in files.values()
    }
    anchors = {
        pf.path: statement_anchors(pf.tree) for pf in files.values()
    }
    unjustified: dict[tuple[str, int], Finding] = {}
    for finding in findings:
        file_comments = comments.get(finding.path, {})
        file_anchors = anchors.get(finding.path, {})
        candidates = [finding.line]
        anchor = file_anchors.get(finding.line)
        if anchor is not None and anchor != finding.line:
            candidates.append(anchor)
        matched = None
        for cand in candidates:
            supp = file_comments.get(cand)
            if supp is not None and (
                finding.rule in supp.rules or "all" in supp.rules
            ):
                matched = (cand, supp)
                break
        if matched is None:
            result.findings.append(finding)
            continue
        result.suppressed += 1
        line, supp = matched
        if finding.rule in ANALYZE_RULES and supp.justification is None:
            unjustified[(finding.path, line)] = Finding(
                rule="unjustified-suppression",
                severity=Severity.ERROR,
                path=finding.path,
                line=line,
                col=0,
                message=(
                    f"suppression of {finding.rule} has no justification; "
                    "append ' -- <why this is safe>' to the disable comment"
                ),
            )
    result.findings.extend(unjustified.values())


def _check_manifest(
    manifest: dict,
    manifest_path: pathlib.Path,
    write: bool,
    result: AnalysisResult,
) -> None:
    fresh = render_manifest(manifest)
    if write:
        manifest_path.write_text(fresh, encoding="utf-8")
        return
    if not manifest_path.exists():
        result.findings.append(Finding(
            rule="manifest-missing",
            severity=Severity.ERROR,
            path=str(manifest_path),
            line=0,
            col=0,
            message=(
                "partition-safety manifest not found; generate it with "
                "repro-analyze --write-manifest and commit it"
            ),
        ))
        return
    committed = manifest_path.read_text(encoding="utf-8")
    if committed != fresh:
        result.findings.append(Finding(
            rule="manifest-drift",
            severity=Severity.ERROR,
            path=str(manifest_path),
            line=0,
            col=0,
            message=(
                "committed manifest is not byte-identical to a fresh "
                "regeneration; rerun repro-analyze --write-manifest and "
                "commit the result"
            ),
        ))


def _verify_corpora(
    corpus_dirs: list[pathlib.Path], result: AnalysisResult
) -> None:
    from repro.fuzz.corpus import corpus_files, load_entry

    for directory in corpus_dirs:
        for path in corpus_files(directory):
            try:
                scenario = load_entry(path)
            except (ValueError, KeyError, TypeError, OSError) as exc:
                result.findings.append(Finding(
                    rule="epoch-corpus-unreadable",
                    severity=Severity.ERROR,
                    path=str(path),
                    line=0,
                    col=0,
                    message=f"cannot load corpus entry: {exc}",
                ))
                continue
            problems = verify_scenario_epochs(scenario)
            for problem in problems:
                result.findings.append(Finding(
                    rule=f"epoch-{problem.kind}",
                    severity=Severity.ERROR,
                    path=str(path),
                    line=0,
                    col=0,
                    message=problem.message(),
                ))
            if not problems:
                result.epochs_verified[str(path)] = (
                    len(scenario.fault_schedule) + 1
                )


def run_analysis(
    paths: list[pathlib.Path],
    *,
    corpus_dirs: list[pathlib.Path] | None = None,
    manifest_path: pathlib.Path | None = None,
    write_manifest: bool = False,
) -> AnalysisResult:
    """Run every analyzer; returns findings sorted by location.

    ``corpus_dirs`` are directories of fuzz/chaos corpus entries for the
    epoch-sequence verifier (None or empty skips it).  With
    ``manifest_path`` the partition manifest is diffed against that file
    (or rewritten when ``write_manifest`` is set).
    """
    result = AnalysisResult()
    files: dict[str, ParsedFile] = {}
    for path in collect_py_files(paths):
        try:
            pf = parse_file(path, roots=paths)
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule="parse-error",
                severity=Severity.ERROR,
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        files[pf.path] = pf
    result.files_scanned = len(files)

    raw: list[Finding] = []
    from repro.lint.registry import CODE_RULES

    identity_rule = CODE_RULES["identity-in-sim"]
    for pf in files.values():
        if rule_applies(identity_rule, pf.scope):
            raw.extend(check_identity_in_sim(pf.tree, pf.path, pf.scope))
    raw.extend(check_unordered_into_sink(files))
    raw.extend(check_runtime_global_mutation(files))
    raw.extend(check_cross_network_mutation(files))
    _apply_suppressions(files, raw, result)

    _index, _effects, partition = _analysis_for(files)
    result.manifest = manifest_dict(partition, SIM_SCOPES)
    if manifest_path is not None:
        _check_manifest(result.manifest, manifest_path, write_manifest, result)

    if corpus_dirs:
        _verify_corpora(corpus_dirs, result)

    result.findings.sort(key=Finding.sort_key)
    return result
