"""Command-line entry point: ``repro-analyze`` / ``python -m repro.analyze``.

Examples::

    repro-analyze                       # src/repro + tests/fuzz_corpus
    repro-analyze src/repro --json
    repro-analyze --write-manifest      # refresh analyze-manifest.json
    repro-analyze --corpus tests/fuzz_corpus --corpus /tmp/found
    repro-analyze --list-rules

Exit status: 0 when no error-severity findings, 1 when there are findings,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analyze.engine import MANIFEST_NAME, run_analysis
from repro.analyze.report import render_json, render_rule_list, render_text

DEFAULT_CORPUS = pathlib.Path("tests/fuzz_corpus")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Whole-program determinism sanitizer, partition-safety "
            "certifier, and epoch-sequence model verifier."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--manifest",
        default=MANIFEST_NAME,
        metavar="FILE",
        help=(
            "partition-safety manifest to diff against "
            f"(default: {MANIFEST_NAME})"
        ),
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="rewrite the manifest instead of diffing it",
    )
    parser.add_argument(
        "--no-manifest-check",
        action="store_true",
        help="skip the manifest diff entirely",
    )
    parser.add_argument(
        "--corpus",
        action="append",
        default=[],
        metavar="DIR",
        help=(
            "corpus directory for the epoch-sequence verifier (repeatable; "
            "default: tests/fuzz_corpus when it exists)"
        ),
    )
    parser.add_argument(
        "--no-epochs",
        action="store_true",
        help="skip corpus epoch verification",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every analyzer rule, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0

    paths = [pathlib.Path(p) for p in args.paths]
    if not paths:
        default = pathlib.Path("src/repro")
        if not default.is_dir():
            print(
                "no paths given and ./src/repro does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [default]
    for p in paths:
        if not p.exists():
            print(f"no such file or directory: {p}", file=sys.stderr)
            return 2

    corpus_dirs = [pathlib.Path(c) for c in args.corpus]
    if not corpus_dirs and not args.no_epochs and DEFAULT_CORPUS.is_dir():
        corpus_dirs = [DEFAULT_CORPUS]
    for c in corpus_dirs:
        if not c.is_dir():
            print(f"no such corpus directory: {c}", file=sys.stderr)
            return 2

    try:
        result = run_analysis(
            paths,
            corpus_dirs=[] if args.no_epochs else corpus_dirs,
            manifest_path=(
                None if args.no_manifest_check
                else pathlib.Path(args.manifest)
            ),
            write_manifest=args.write_manifest,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print(render_json(result) if args.json else render_text(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
