"""Rendering analyze results for humans and for machines (``--json``)."""

from __future__ import annotations

import json

from repro.analyze.engine import AnalysisResult
from repro.lint.findings import Severity

META_RULES: dict[str, str] = {
    "unjustified-suppression": (
        "every suppression of an analyze rule must say *why* it is safe "
        "(append ' -- <reason>' to the disable comment)"
    ),
    "manifest-drift": (
        "the committed analyze-manifest.json must be byte-identical to a "
        "fresh regeneration"
    ),
    "manifest-missing": (
        "the partition-safety manifest must exist and be committed"
    ),
    "epoch-cdg-cycle": (
        "the multicast-extended channel dependency graph must stay acyclic "
        "at every routing epoch a fault schedule reaches"
    ),
    "epoch-reachability": (
        "down-port reachability strings must cover BFS-tree descendants at "
        "every routing epoch"
    ),
    "epoch-disconnect": (
        "every scheduled fault must leave the switch graph connected "
        "(otherwise reconfiguration cannot absorb it)"
    ),
    "epoch-corpus-unreadable": (
        "every committed corpus entry must load as a valid scenario"
    ),
}
"""Findings the analyze engine emits itself (no lint-registry entry)."""


def render_text(result: AnalysisResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    modules = result.manifest.get("modules", {})
    classes: dict[str, int] = {}
    for entry in modules.values():
        key = entry["classification"]
        classes[key] = classes.get(key, 0) + 1
    class_summary = ", ".join(
        f"{n} {name}" for name, n in sorted(classes.items())
    ) or "none"
    epochs = sum(result.epochs_verified.values())
    summary = (
        f"{result.files_scanned} file(s), {len(modules)} sim module(s) "
        f"classified ({class_summary}), "
        f"{len(result.epochs_verified)} corpus entr(ies) / {epochs} "
        f"epoch(s) verified: {len(result.errors)} error(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report for CI consumption."""
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "counts": {
            "error": len(result.errors),
            "warning": sum(
                1 for f in result.findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [f.to_json() for f in result.findings],
        "manifest": result.manifest,
        "epochs_verified": result.epochs_verified,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules``: the analyzer rules plus the engine's own checks."""
    from repro.analyze.engine import ANALYZE_RULES
    from repro.lint.registry import all_rules

    blocks = []
    registry = all_rules()
    for rule_id in sorted(ANALYZE_RULES):
        r = registry[rule_id]
        scope = "all code" if r.scopes is None else "/".join(sorted(r.scopes))
        blocks.append(
            f"{rule_id} [{r.kind}, {r.severity.value}, scope: {scope}]\n"
            f"  {r.description}\n"
            f"  why: {r.rationale}"
        )
    for rule_id, description in sorted(META_RULES.items()):
        blocks.append(f"{rule_id} [analyze, error]\n  {description}")
    return "\n\n".join(blocks)
