#!/usr/bin/env python3
"""Load-saturation study: latency under increasing multicast load (Figs 9-11).

Applies open-loop Poisson multicast traffic (16-way by default) at rising
effective applied load and renders latency-vs-load curves for all four
schemes as an ASCII chart, showing which scheme saturates first.

Run:  python examples/load_saturation_study.py [--degree 4|16] [--quick]
"""

import argparse

from repro.experiments.base import Series
from repro.params import SimParams
from repro.topology.irregular import generate_irregular_topology
from repro.traffic.load import sweep_load
from repro.visual.ascii import ascii_xy_chart

SCHEMES = ("binomial", "ni", "path", "tree")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--degree", type=int, default=16, choices=(4, 16))
    ap.add_argument("--quick", action="store_true")
    args = ap.parse_args()

    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    loads = [0.01, 0.03, 0.06, 0.09, 0.12, 0.16]
    duration = 60_000 if args.quick else 150_000

    series = []
    for scheme in SCHEMES:
        points = sweep_load(
            topo, params, scheme, args.degree, loads,
            duration=duration, warmup=duration // 10,
        )
        series.append(
            Series(
                label=scheme,
                x=loads,
                y=[
                    None if p.saturated else p.mean_latency for p in points
                ],
            )
        )
        last_ok = max(
            (p.effective_load for p in points
             if not p.saturated and p.mean_latency is not None),
            default=0.0,
        )
        print(f"{scheme:<10} holds up through load {last_ok:g}")

    print(f"\nmean latency vs effective applied load, "
          f"{args.degree}-way multicast\n")
    print(ascii_xy_chart(series))
    print("\nExpected order of saturation: binomial first, then NI/path, "
          "tree last.")


if __name__ == "__main__":
    main()
