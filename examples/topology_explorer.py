#!/usr/bin/env python3
"""Topology explorer: inspect routing structures and multicast plans.

Generates a random irregular topology and prints everything the schemes are
built from: the BFS spanning tree and up/down link orientation, per-port
reachability strings, a sample up*/down* route, and the static plans of all
three enhanced multicast schemes for a sample destination set.

Run:  python examples/topology_explorer.py [seed]
"""

import random
import sys

from repro.multicast.kbinomial import NIKBinomialScheme
from repro.multicast.pathworm import plan_path_worms
from repro.multicast.treeworm import plan_tree_worm
from repro.params import SimParams
from repro.routing.paths import path_switches, shortest_path_links
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    params = SimParams()
    topo = generate_irregular_topology(params, seed=seed)
    net = SimNetwork(topo, params)
    rt, reach = net.routing, net.reach

    print(f"== irregular topology (seed {seed}) ==")
    for s in range(topo.num_switches):
        hosts = topo.nodes_on_switch(s)
        nbrs = topo.neighbors(s)
        print(f"  switch {s}: level {rt.tree.level[s]}, hosts {hosts}, "
              f"links to {nbrs}, {topo.free_ports(s)} free ports")

    print("\n== BFS spanning tree / up-down orientation ==")
    print(f"  root: switch {rt.tree.root} (depth {rt.tree.depth()})")
    for lk in topo.links:
        up = rt.up_end_switch(lk)
        down = lk.other_end(up).switch
        print(f"  link {lk.link_id}: {down} --up--> {up}")

    print("\n== reachability strings (down ports) ==")
    for s in range(topo.num_switches):
        for lk in rt.down_links_of(s):
            nodes = sorted(reach.port_reach(s, lk))
            print(f"  switch {s}, link {lk.link_id}: "
                  f"mask=0x{reach.port_reach_mask(s, lk):08x} nodes={nodes}")

    a, b = 0, topo.num_nodes - 1
    sa, sb = topo.switch_of_node(a), topo.switch_of_node(b)
    route = shortest_path_links(rt, sa, sb)
    print(f"\n== sample up*/down* route: node {a} -> node {b} ==")
    print(f"  switches: {path_switches(sa, route)} ({len(route)} hops)")

    rng = random.Random(seed)
    dests = rng.sample([n for n in range(topo.num_nodes) if n != 0], 10)
    print(f"\n== multicast plans: source 0 -> {sorted(dests)} ==")

    tp = plan_tree_worm(net, topo.switch_of_node(0), dests)
    print(f"  tree worm: climb {list(tp.up_switch_path)} then replicate "
          f"downward from switch {tp.turn_switch}")

    pp = plan_path_worms(net, 0, dests)
    print(f"  path worms: {len(pp.worms)} worm(s) in {pp.num_phases} phase(s)")
    for i, phase in enumerate(pp.phases, 1):
        for w in phase:
            print(f"    phase {i}: node {w.sender} sends along "
                  f"{list(w.switch_path)}, dropping {sorted(w.covered)}")

    k, tree = NIKBinomialScheme().plan(net, 0, dests)
    print(f"  NI k-binomial tree (k={k}):")
    for node in [0] + sorted(dests):
        if tree[node]:
            print(f"    node {node} forwards to {tree[node]}")


if __name__ == "__main__":
    main()
