#!/usr/bin/env python3
"""Quickstart: compare the four multicast schemes on one irregular network.

Builds the paper's default system (32 nodes, eight 8-port switches, random
irregular topology), runs one 15-destination multicast under each scheme,
and prints per-destination and total latencies.

Run:  python examples/quickstart.py [seed]
"""

import random
import sys

from repro.multicast import SCHEMES, make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    params = SimParams()
    topo = generate_irregular_topology(params, seed=seed)
    rng = random.Random(seed)
    source = 0
    dests = rng.sample([n for n in range(params.num_nodes) if n != source], 15)

    print(f"system: {params.num_nodes} nodes, {params.num_switches} switches "
          f"(seed {seed}); multicast {source} -> {len(dests)} destinations")
    print(f"overheads: o_host={params.o_host} cycles, o_ni={params.o_ni} "
          f"cycles (R={params.ratio_r:g}); packet={params.packet_flits} flits\n")

    rows = []
    for name in sorted(SCHEMES):
        net = SimNetwork(topo, params)
        result = make_scheme(name).execute(net, source, dests)
        net.run()
        first = min(result.dest_latency(d) for d in dests)
        rows.append((name, result.latency, first))

    rows.sort(key=lambda r: r[1])
    print(f"{'scheme':<10} {'latency (cycles)':>17} {'first dest':>12}")
    for name, lat, first in rows:
        print(f"{name:<10} {lat:>17.0f} {first:>12.0f}")
    best = rows[0][0]
    print(f"\nwinner: {best} -- the paper's conclusion is that single-phase "
          "tree-based hardware multicast wins, with NI support a strong "
          "first step.")


if __name__ == "__main__":
    main()
