#!/usr/bin/env python3
"""Collective operations study: does the multicast winner win collectives?

The paper motivates multicast as the substrate of collective communication
(barriers, DSM invalidations with ack collection).  This example times a
full broadcast, an all-node barrier, a reduction, and the invalidate+ack
pattern on each multicast scheme.

Run:  python examples/collective_ops.py [seed]
"""

import random
import sys

from repro.collectives import barrier, broadcast, multicast_with_acks, reduce_to_root
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology

MULTICAST_SCHEMES = ("binomial", "ni", "path", "tree")


def timed(factory):
    res = factory()
    return res


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    params = SimParams()
    topo = generate_irregular_topology(params, seed=seed)
    rng = random.Random(seed)
    inval_dests = rng.sample(range(1, params.num_nodes), 8)

    print(f"collectives on {params.num_nodes} nodes / "
          f"{params.num_switches} switches (seed {seed})\n")
    print(f"{'collective':<22}" + "".join(f"{s:>10}" for s in MULTICAST_SCHEMES))

    rows = {
        "broadcast (1->31)": lambda net, s: broadcast(net, 0, s),
        "barrier (32 nodes)": lambda net, s: barrier(net, 0, s),
        "invalidate+acks (8)": lambda net, s: multicast_with_acks(
            net, 0, inval_dests, s
        ),
    }
    for label, op in rows.items():
        cells = []
        for scheme in MULTICAST_SCHEMES:
            net = SimNetwork(topo, params)
            res = op(net, scheme)
            net.run()
            cells.append(f"{res.latency:>10.0f}")
        print(f"{label:<22}" + "".join(cells))

    net = SimNetwork(topo, params)
    red = reduce_to_root(net, 0)
    net.run()
    print(f"\n{'reduce (31->1)':<22}{red.latency:>10.0f}  "
          "(binomial combining tree; scheme-independent)")
    print("\nlatencies in cycles; lower is better. The multicast winner "
          "(tree) carries through to every multicast-built collective.")


if __name__ == "__main__":
    main()
