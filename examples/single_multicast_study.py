#!/usr/bin/env python3
"""Single-multicast latency study: the NI-vs-switch trade-off (Figures 6-8).

Sweeps the three parameters the paper isolates -- the overhead ratio R, the
switch count, and the message length -- and prints, for each, which scheme
wins at a 16-destination multicast and by what factor.

Run:  python examples/single_multicast_study.py [--quick]
"""

import sys

from repro.metrics.stats import LatencySummary
from repro.params import SimParams
from repro.traffic.single import average_single_multicast_latency

SCHEMES = ("ni", "path", "tree")


def measure(params: SimParams, n_topo: int) -> dict[str, LatencySummary]:
    return {
        s: average_single_multicast_latency(
            params, s, group_size=16, n_topologies=n_topo,
            trials_per_topology=2,
        )
        for s in SCHEMES
    }


def report(title: str, variants: dict[str, SimParams], n_topo: int) -> None:
    print(f"--- {title} ---")
    print(f"{'variant':<12}" + "".join(f"{s:>10}" for s in SCHEMES) + "   winner")
    for label, p in variants.items():
        res = measure(p, n_topo)
        winner = min(res, key=lambda s: res[s].mean)
        cells = "".join(f"{res[s].mean:>10.0f}" for s in SCHEMES)
        print(f"{label:<12}{cells}   {winner}")
    print()


def main() -> None:
    n_topo = 2 if "--quick" in sys.argv else 5
    base = SimParams()

    report(
        "overhead ratio R = o_host/o_ni (Fig. 6)",
        {f"R={r:g}": base.replace(ratio_r=r) for r in (0.5, 1, 2, 4)},
        n_topo,
    )
    report(
        "number of switches, 32 nodes fixed (Fig. 7)",
        {f"{s} switches": base.replace(num_switches=s) for s in (8, 16, 32)},
        n_topo,
    )
    report(
        "message length in flits (Fig. 8)",
        {
            f"{f} flits": base.replace(message_packets=f // 128)
            for f in (128, 256, 512, 1024)
        },
        n_topo,
    )
    print("expected: tree always wins; NI gains on path as R and message "
          "length grow; path suffers as switches multiply.")


if __name__ == "__main__":
    main()
