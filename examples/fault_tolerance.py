#!/usr/bin/env python3
"""Fault tolerance study: multicast after link failures + reconfiguration.

The paper motivates irregular topologies by resilience: "resistant to
faults" with "network reconfigurations".  This example fails random links
one by one (keeping the network connected), reconfigures routing Autonet-
style (recomputed BFS tree / up-down orientation / reachability strings),
and shows how each multicast scheme's latency and plan degrade.

Run:  python examples/fault_tolerance.py [seed]
"""

import random
import sys

from repro.multicast import make_scheme
from repro.multicast.pathworm import plan_path_worms
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.analysis import analyze
from repro.topology.faults import degrade, removable_links
from repro.topology.irregular import generate_irregular_topology

SCHEMES = ("ni", "path", "tree")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    params = SimParams()
    topo = generate_irregular_topology(params, seed=seed)
    rng = random.Random(seed)
    dests = rng.sample(range(1, params.num_nodes), 16)

    print(f"healthy network: {len(topo.links)} links, "
          f"{len(removable_links(topo))} individually removable\n")
    print(f"{'failures':>9} {'diameter':>9} {'worms':>6}"
          + "".join(f"{s:>9}" for s in SCHEMES))

    for k in (0, 1, 2, 3, 4):
        try:
            degraded, failed = degrade(topo, k, random.Random(seed + k))
        except ValueError:
            print(f"{k:>9}  (network cannot absorb {k} failures)")
            break
        stats = analyze(degraded)
        plan_net = SimNetwork(degraded, params)
        n_worms = len(plan_path_worms(plan_net, 0, dests).worms)
        cells = []
        for scheme in SCHEMES:
            net = SimNetwork(degraded, params)
            res = make_scheme(scheme).execute(net, 0, dests)
            net.run()
            cells.append(f"{res.latency:>9.0f}")
        print(f"{k:>9} {stats.diameter:>9} {n_worms:>6}" + "".join(cells))

    print("\nEvery scheme keeps working after reconfiguration; latencies "
          "degrade gracefully as the route diversity shrinks.")


if __name__ == "__main__":
    main()
