#!/usr/bin/env python3
"""Design-space analysis: the architect's view of NI-vs-switch support.

Combines the library's analysis tools the way the paper's intended reader
(a system architect) would: the section-3.3 hardware-cost table, a
parameter-sensitivity tornado, predicted saturation loads, and a latency
decomposition -- everything needed to decide where multicast support pays.

Run:  python examples/design_space.py [--quick]
"""

import random
import sys

from repro.analysis.requirements import render_requirements, requirements_table
from repro.analysis.saturation import predict_saturation
from repro.experiments.calibration import render_tornado, tornado_analysis
from repro.metrics.breakdown import decompose_multicast
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def main() -> None:
    quick = "--quick" in sys.argv
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    net = SimNetwork(topo, params)
    dests = random.Random(0).sample(range(1, 32), 16)

    print("=" * 70)
    print("1. hardware cost (paper section 3.3, quantified)")
    print("=" * 70)
    print(render_requirements(requirements_table(net)))

    print()
    print("=" * 70)
    print("2. where does the latency go? (16-way multicast)")
    print("=" * 70)
    for scheme in ("binomial", "ni", "path", "tree"):
        print(" ", decompose_multicast(topo, params, scheme, 0, dests))

    print()
    print("=" * 70)
    print("3. predicted saturation loads (bottleneck analysis)")
    print("=" * 70)
    for scheme in ("binomial", "ni", "path", "tree"):
        est = predict_saturation(net, scheme, 16)
        print(f"  {scheme:<9} saturates near load {est.saturation_load:.3f} "
              f"(bottleneck: {est.bottleneck})")

    print()
    print("=" * 70)
    print("4. parameter sensitivity (tornado)")
    print("=" * 70)
    bars = tornado_analysis(
        n_topologies=1 if quick else 3,
        trials=1 if quick else 2,
    )
    print(render_tornado(bars[:9]))

    print()
    print("verdict: switch support (tree worms) minimises both the software")
    print("share and the saturation risk, at the price of N-bit headers and")
    print("reachability storage; NI support gets most of the win with zero")
    print("switch cost once R > 2 -- the paper's conclusion, from the")
    print("architect's chair.")


if __name__ == "__main__":
    main()
